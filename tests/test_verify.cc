/**
 * @file
 * Robustness tests: the invariant checker, the forward-progress
 * watchdog, per-run deadlines, and crash-safe file writing. The
 * fault-injection half proves each defense actually fires: every
 * injector from src/verify corrupts exactly the state one defense
 * guards, and the matching SimError category must come out.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/atomic_file.hh"
#include "common/sim_error.hh"
#include "config/presets.hh"
#include "core/simulator.hh"
#include "tracecache/trace_line.hh"
#include "verify/fault.hh"
#include "verify/invariant_checker.hh"
#include "workload/workload.hh"

namespace ctcp {
namespace {

SimConfig
checkedConfig(std::uint64_t budget = 60'000, unsigned level = 1)
{
    SimConfig cfg = baseConfig();
    cfg.instructionLimit = budget;
    cfg.checkLevel = level;
    return cfg;
}

std::string
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return {};
    std::string out;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

bool
fileExists(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f)
        std::fclose(f);
    return f != nullptr;
}

TEST(SimErrorTaxonomy, NamesRoundTrip)
{
    for (ErrorCategory c :
         {ErrorCategory::Config, ErrorCategory::Workload,
          ErrorCategory::Timeout, ErrorCategory::Hang,
          ErrorCategory::Invariant, ErrorCategory::Internal})
        EXPECT_EQ(errorCategoryFromName(errorCategoryName(c)), c);
    EXPECT_EQ(errorCategoryFromName("martian"), ErrorCategory::Internal);
}

TEST(SimErrorTaxonomy, OnlyTransientCategoriesAreRetryable)
{
    // Config and invariant failures are deterministic: re-running the
    // identical job reproduces them, so retrying just burns time.
    EXPECT_FALSE(errorCategoryRetryable(ErrorCategory::Config));
    EXPECT_FALSE(errorCategoryRetryable(ErrorCategory::Invariant));
    EXPECT_TRUE(errorCategoryRetryable(ErrorCategory::Workload));
    EXPECT_TRUE(errorCategoryRetryable(ErrorCategory::Timeout));
    EXPECT_TRUE(errorCategoryRetryable(ErrorCategory::Hang));
    EXPECT_TRUE(errorCategoryRetryable(ErrorCategory::Internal));
}

TEST(SimErrorTaxonomy, CarriesCategoryAndMessage)
{
    const SimError e(ErrorCategory::Hang, "stuck at cycle 42");
    EXPECT_EQ(e.category(), ErrorCategory::Hang);
    EXPECT_STREQ(e.what(), "stuck at cycle 42");
}

TEST(InvariantChecker, CleanRunMatchesUncheckedRun)
{
    // The checker is pure observation: enabling it must not perturb a
    // single stat. Byte-compare the full dumps, all strategies.
    for (AssignStrategy s :
         {AssignStrategy::BaseSlotOrder, AssignStrategy::Fdrt,
          AssignStrategy::Friendly, AssignStrategy::IssueTime}) {
        Program prog = workloads::build("gzip");
        SimConfig off = checkedConfig(40'000, 0);
        SimConfig on = checkedConfig(40'000, 1);
        off.assign.strategy = s;
        on.assign.strategy = s;
        const SimResult unchecked = CtcpSimulator(off, prog).run();
        const SimResult checked = CtcpSimulator(on, prog).run();
        EXPECT_EQ(unchecked.statsText, checked.statsText)
            << "strategy " << assignStrategyName(s);
        EXPECT_EQ(unchecked.cycles, checked.cycles);
    }
}

TEST(InvariantChecker, CatchesCorruptedReadyAt)
{
    Program prog = workloads::build("gzip");
    CtcpSimulator sim(checkedConfig(400'000), prog);
    // Warm up until the scheduler has resident work.
    for (int i = 0; i < 500 && !sim.done(); ++i)
        sim.step();

    bool injected = false;
    bool caught = false;
    try {
        for (int i = 0; i < 50'000 && !sim.done(); ++i) {
            injected |= verify::FaultInjector::corruptReadyAt(
                sim, 17 + static_cast<std::uint64_t>(i));
            sim.step();
        }
    } catch (const SimError &e) {
        caught = true;
        EXPECT_EQ(e.category(), ErrorCategory::Invariant);
        EXPECT_NE(std::string(e.what()).find("invariant"),
                  std::string::npos);
    }
    EXPECT_TRUE(injected);
    EXPECT_TRUE(caught) << "corrupted readyAt was never detected";
}

TEST(InvariantChecker, CatchesScrambledTraceLine)
{
    Program prog = workloads::build("gzip");
    CtcpSimulator sim(checkedConfig(400'000), prog);
    // Warm up until the trace cache holds lines.
    for (int i = 0; i < 3'000 && !sim.done(); ++i)
        sim.step();
    ASSERT_TRUE(verify::FaultInjector::scrambleTraceLine(sim));

    // The corrupted permutation surfaces when the (hottest) line is
    // fetched again: two instructions land in the same issue slot.
    bool caught = false;
    try {
        for (int i = 0; i < 200'000 && !sim.done(); ++i)
            sim.step();
    } catch (const SimError &e) {
        caught = true;
        EXPECT_EQ(e.category(), ErrorCategory::Invariant);
    }
    EXPECT_TRUE(caught) << "scrambled trace line was never detected";
}

TEST(InvariantChecker, RejectsDuplicatePhysicalSlotDirectly)
{
    verify::InvariantChecker checker(1, 4, 4);
    TraceLine line;
    line.valid = true;
    line.insts.resize(3);
    line.insts[0].physSlot = 2;
    line.insts[1].physSlot = 7;
    line.insts[2].physSlot = 9;
    checker.checkTraceLine(line); // distinct slots: fine

    line.insts[2].physSlot = 7;   // collision
    EXPECT_THROW(checker.checkTraceLine(line), SimError);
    line.insts[2].physSlot = 16;  // outside a 16-wide machine
    EXPECT_THROW(checker.checkTraceLine(line), SimError);
}

TEST(Watchdog, StalledRetirementAbortsWithHang)
{
    const std::string trace =
        std::string(::testing::TempDir()) + "ctcp_watchdog_trace.txt";
    std::remove(trace.c_str());

    Program prog = workloads::build("gzip");
    SimConfig cfg = checkedConfig(1'000'000, 0);
    cfg.watchdogCycles = 3'000;
    cfg.obs.traceTextPath = trace;
    cfg.obs.traceFilter = "snapshot";
    {
        CtcpSimulator sim(cfg, prog);
        verify::FaultInjector::stallRetirement(sim, true);
        try {
            sim.run();
            FAIL() << "stalled pipeline did not trip the watchdog";
        } catch (const SimError &e) {
            EXPECT_EQ(e.category(), ErrorCategory::Hang);
            EXPECT_NE(std::string(e.what()).find("no instruction"),
                      std::string::npos);
        }
    }
    // The abort dumped a pipeline-state snapshot through the obs sink.
    const std::string dumped = readFile(trace);
    EXPECT_NE(dumped.find("snapshot"), std::string::npos);
    EXPECT_NE(dumped.find("rob"), std::string::npos);
    std::remove(trace.c_str());
}

TEST(Watchdog, DisabledWatchdogLetsHealthyRunsFinish)
{
    Program prog = workloads::build("gzip");
    SimConfig cfg = checkedConfig(20'000, 0);
    cfg.watchdogCycles = 0;
    const SimResult r = CtcpSimulator(cfg, prog).run();
    EXPECT_GE(r.instructions, 20'000u);
}

TEST(Deadline, OverrunningRunTimesOut)
{
    Program prog = workloads::build("gzip");
    SimConfig cfg = checkedConfig(2'000'000, 0);
    cfg.deadlineSeconds = 1e-6; // expired by the first periodic check
    try {
        CtcpSimulator(cfg, prog).run();
        FAIL() << "deadline never fired";
    } catch (const SimError &e) {
        EXPECT_EQ(e.category(), ErrorCategory::Timeout);
    }
}

TEST(AtomicFile, CommitPublishesContent)
{
    const std::string path =
        std::string(::testing::TempDir()) + "ctcp_atomic_commit.txt";
    std::remove(path.c_str());
    {
        AtomicFile f(path);
        f.write(std::string("published"));
        EXPECT_FALSE(fileExists(path)) << "visible before commit";
        f.commit();
    }
    EXPECT_EQ(readFile(path), "published");
    EXPECT_FALSE(fileExists(path + ".tmp"));
    std::remove(path.c_str());
}

TEST(AtomicFile, AbandonedWriterPreservesPreviousContent)
{
    const std::string path =
        std::string(::testing::TempDir()) + "ctcp_atomic_keep.txt";
    atomicWriteFile(path, "old version");
    {
        AtomicFile f(path);
        f.write(std::string("half-written new ver"));
        // Destroyed without commit(): simulates a run dying mid-write.
    }
    EXPECT_EQ(readFile(path), "old version");
    EXPECT_FALSE(fileExists(path + ".tmp"));
    std::remove(path.c_str());
}

TEST(AtomicFile, OneShotHelperRoundTrips)
{
    const std::string path =
        std::string(::testing::TempDir()) + "ctcp_atomic_oneshot.txt";
    atomicWriteFile(path, "first");
    atomicWriteFile(path, "second");
    EXPECT_EQ(readFile(path), "second");
    std::remove(path.c_str());
}

} // namespace
} // namespace ctcp
