/**
 * @file
 * Unit tests for the fetch engine: I-cache group formation, stopping
 * at taken branches, mispredict gating and resumption, trace-cache
 * line delivery with carried FDRT profiles, and RAS integration.
 */

#include <gtest/gtest.h>

#include "config/presets.hh"
#include "core/fetch.hh"
#include "prog/builder.hh"

namespace ctcp {
namespace {

class FetchTest : public ::testing::Test
{
  protected:
    void
    init(Program &&program)
    {
        program_ = std::make_unique<Program>(std::move(program));
        cfg_ = baseConfig();
        exec_ = std::make_unique<Executor>(*program_);
        dmem_ = std::make_unique<DataMemorySystem>(cfg_.mem);
        imem_ = std::make_unique<InstMemory>(cfg_.frontEnd, *dmem_);
        bpred_ = std::make_unique<BranchPredictor>(cfg_.bpred);
        tc_ = std::make_unique<TraceCache>(cfg_.frontEnd.traceCache);
        pool_ = std::make_unique<TimedInstPool>(arena_);
        fetch_ = std::make_unique<FetchEngine>(cfg_, *tc_, *imem_, *bpred_,
                                               *exec_, *pool_);
    }

    SimConfig cfg_;
    Arena arena_;
    std::unique_ptr<TimedInstPool> pool_;
    std::unique_ptr<Program> program_;
    std::unique_ptr<Executor> exec_;
    std::unique_ptr<DataMemorySystem> dmem_;
    std::unique_ptr<InstMemory> imem_;
    std::unique_ptr<BranchPredictor> bpred_;
    std::unique_ptr<TraceCache> tc_;
    std::unique_ptr<FetchEngine> fetch_;
};

Program
straightLine(int n)
{
    ProgramBuilder b("straight");
    for (int i = 0; i < n; ++i)
        b.addi(intReg(1), intReg(1), 1);
    b.halt();
    return b.build();
}

TEST_F(FetchTest, IcacheGroupsLimitedToWidth)
{
    init(straightLine(10));
    auto g1 = fetch_->fetchCycle(0);
    ASSERT_TRUE(g1.has_value());
    EXPECT_FALSE(g1->fromTraceCache);
    EXPECT_EQ(g1->insts.size(), cfg_.frontEnd.icacheFetchWidth);
    // Slot indices are sequential buffer positions.
    for (std::size_t i = 0; i < g1->insts.size(); ++i)
        EXPECT_EQ(g1->insts[i]->slotIndex, static_cast<int>(i));
    // Cold I-cache: the group is delayed past the fetch stages.
    EXPECT_GT(g1->readyAt, Cycle{0} + cfg_.frontEnd.fetchStages);

    auto g2 = fetch_->fetchCycle(1);
    ASSERT_TRUE(g2.has_value());
    EXPECT_EQ(g2->insts[0]->dyn.pc, 4u);
    // Same I-cache line now hits: only the pipelined fetch latency.
    EXPECT_EQ(g2->readyAt, Cycle{1} + cfg_.frontEnd.fetchStages);
}

TEST_F(FetchTest, StopsAfterPredictedTakenBranch)
{
    ProgramBuilder b("jumpy");
    b.addi(intReg(1), intReg(1), 1);    // 0
    b.jump("target");                    // 1: unconditional taken
    b.nop();                             // 2 (never executed)
    b.label("target");
    b.addi(intReg(1), intReg(1), 1);    // 3
    b.halt();                            // 4
    init(b.build());

    auto g = fetch_->fetchCycle(0);
    ASSERT_TRUE(g.has_value());
    // Cannot fetch past a taken transfer within one cycle.
    ASSERT_EQ(g->insts.size(), 2u);
    EXPECT_EQ(g->insts[1]->dyn.op, Opcode::Jump);
    EXPECT_FALSE(g->insts[1]->mispredicted);   // direct target, no gate

    auto g2 = fetch_->fetchCycle(1);
    ASSERT_TRUE(g2.has_value());
    EXPECT_EQ(g2->insts[0]->dyn.pc, 3u);   // resumed at the target
}

TEST_F(FetchTest, MispredictGatesUntilResolved)
{
    // A forward conditional that is never taken: the untrained
    // predictor (weakly-taken counters) predicts taken -> mispredict.
    ProgramBuilder b("nt");
    b.movi(intReg(1), 1);
    b.beq(intReg(1), zeroReg, "skip");   // never taken
    b.addi(intReg(2), intReg(2), 1);
    b.label("skip");
    b.halt();
    init(b.build());

    auto g = fetch_->fetchCycle(0);
    ASSERT_TRUE(g.has_value());
    const TimedInst *branch = nullptr;
    for (const auto &ti : g->insts)
        if (ti->dyn.isCondBranch())
            branch = ti;
    ASSERT_NE(branch, nullptr);
    EXPECT_TRUE(branch->mispredicted);
    EXPECT_EQ(fetch_->gatingBranch(), branch->dyn.seq);

    // Fetch is gated until the branch resolves.
    EXPECT_FALSE(fetch_->fetchCycle(1).has_value());
    EXPECT_FALSE(fetch_->fetchCycle(5).has_value());
    fetch_->resolveGate(branch->dyn.seq, 10);
    EXPECT_FALSE(fetch_->fetchCycle(9).has_value());   // not yet
    auto g2 = fetch_->fetchCycle(10);
    ASSERT_TRUE(g2.has_value());
    EXPECT_EQ(g2->insts[0]->dyn.pc, 2u);   // correct-path continuation
}

TEST_F(FetchTest, ResolveIgnoresWrongSeq)
{
    ProgramBuilder b("nt2");
    b.movi(intReg(1), 1);
    b.beq(intReg(1), zeroReg, "skip");
    b.label("skip");
    b.halt();
    init(b.build());
    auto g = fetch_->fetchCycle(0);
    ASSERT_TRUE(g.has_value());
    const InstSeqNum gate = fetch_->gatingBranch();
    ASSERT_NE(gate, invalidSeqNum);
    fetch_->resolveGate(gate + 17, 1);   // not the gating branch
    EXPECT_FALSE(fetch_->fetchCycle(2).has_value());
    fetch_->resolveGate(gate, 3);
    EXPECT_TRUE(fetch_->fetchCycle(3).has_value());
}

TEST_F(FetchTest, TraceCacheLineDeliversProfilesAndSlots)
{
    init(straightLine(8));

    // Hand-build a resident trace line covering PCs 0..5 with a
    // shuffled physical order and one FDRT profile.
    TraceLine line;
    line.key.startPc = 0;
    for (int i = 0; i < 6; ++i) {
        TraceSlot slot;
        slot.pc = static_cast<Addr>(i);
        slot.physSlot = static_cast<std::uint8_t>(5 - i);   // reversed
        line.insts.push_back(slot);
    }
    line.insts[2].profile.role = ChainRole::Leader;
    line.insts[2].profile.chainCluster = 3;
    tc_->insert(line);

    auto g = fetch_->fetchCycle(0);
    ASSERT_TRUE(g.has_value());
    EXPECT_TRUE(g->fromTraceCache);
    ASSERT_EQ(g->insts.size(), 6u);
    for (int i = 0; i < 6; ++i) {
        EXPECT_EQ(g->insts[static_cast<std::size_t>(i)]->cold().logicalIndex,
                  i);
        EXPECT_EQ(g->insts[static_cast<std::size_t>(i)]->slotIndex, 5 - i);
        EXPECT_EQ(g->insts[static_cast<std::size_t>(i)]->traceKey,
                  line.key.hash());
    }
    EXPECT_EQ(g->insts[2]->profile.role, ChainRole::Leader);
    EXPECT_EQ(g->insts[2]->profile.chainCluster, 3);
    // All instructions of one line share a trace instance.
    EXPECT_EQ(g->insts[0]->traceInstance, g->insts[5]->traceInstance);

    // The next fetch starts after the line and is a different instance.
    auto g2 = fetch_->fetchCycle(1);
    ASSERT_TRUE(g2.has_value());
    EXPECT_EQ(g2->insts[0]->dyn.pc, 6u);
    EXPECT_NE(g2->insts[0]->traceInstance, g->insts[0]->traceInstance);
}

TEST_F(FetchTest, ReturnUsesRasWithoutGating)
{
    ProgramBuilder b("callret");
    b.jump("main");          // 0
    b.label("fn");
    b.addi(intReg(1), intReg(1), 1);   // 1
    b.ret();                            // 2
    b.label("main");
    b.call("fn");            // 3
    b.addi(intReg(2), intReg(2), 1);   // 4
    b.halt();                // 5
    init(b.build());

    // Group 1: jump (stops the group).
    auto g1 = fetch_->fetchCycle(0);
    ASSERT_TRUE(g1.has_value());
    // Group 2: call at pc 3 (stops, pushes RAS).
    auto g2 = fetch_->fetchCycle(1);
    ASSERT_TRUE(g2.has_value());
    EXPECT_TRUE(g2->insts.back()->dyn.isCallOp());
    // Group 3: fn body; the ret pops the RAS and predicts pc 4.
    auto g3 = fetch_->fetchCycle(2);
    ASSERT_TRUE(g3.has_value());
    const TimedInst *ret = g3->insts.back();
    EXPECT_TRUE(ret->dyn.isReturnOp());
    EXPECT_FALSE(ret->mispredicted);
    EXPECT_EQ(ret->cold().predictedTarget, 4u);
    EXPECT_EQ(fetch_->gatingBranch(), invalidSeqNum);
}

TEST_F(FetchTest, StreamEndsAfterHalt)
{
    init(straightLine(2));
    EXPECT_FALSE(fetch_->streamEnded());
    (void)fetch_->fetchCycle(0);   // 2 addi + halt fit in one group
    EXPECT_TRUE(fetch_->streamEnded());
    EXPECT_FALSE(fetch_->fetchCycle(1).has_value());
}

TEST_F(FetchTest, CountsBySource)
{
    init(straightLine(10));
    (void)fetch_->fetchCycle(0);
    EXPECT_EQ(fetch_->instsFromIC(), 4u);
    EXPECT_EQ(fetch_->instsFromTC(), 0u);
}

} // namespace
} // namespace ctcp
