/**
 * @file
 * HTML report and regression-comparator tests.
 *
 * In-process: report JSON decoding (campaign and single-run),
 * interval CSV decoding, HTML self-containment and determinism, and
 * the comparator's tolerance/structural semantics. End-to-end: the
 * ctcpsim --report flow plus the ctcp_report / ctcp_compare binaries'
 * exit-code contract (0 match, 1 drift with a delta table, 2 usage),
 * which CI gates on.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/wait.h>

#include "obs/compare.hh"
#include "obs/report.hh"

namespace ctcp {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

void
spit(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary);
    out << text;
    ASSERT_TRUE(out.good()) << path;
}

/** Run a shell command; return its exit status (-1 on signal). */
int
runCmd(const std::string &cmd)
{
    const int rc = std::system((cmd + " >/dev/null 2>&1").c_str());
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

int
runCmdCapture(const std::string &cmd, std::string &out)
{
    const std::string path =
        ::testing::TempDir() + "ctcp_report_capture.txt";
    const int rc =
        std::system((cmd + " >" + path + " 2>/dev/null").c_str());
    out = slurp(path);
    std::remove(path.c_str());
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

const char *campaignJson = R"({
  "campaign": { "jobs": 2, "failed": 1 },
  "results": [
    {
      "label": "gzip/base",
      "benchmark": "gzip",
      "status": "ok",
      "metrics": {
        "benchmark": "gzip",
        "strategy": "base",
        "cycles": 1000,
        "instructions": 2000,
        "ipc": 2.0,
        "accounting": {
          "cycles": 1000.0,
          "num_clusters": 2.0,
          "cluster_width": 2.0,
          "slots.total": 4000.0,
          "slots.useful": 2000.0,
          "slots.wait_fwd1": 1000.0,
          "slots.idle": 1000.0,
          "cluster0.slots.useful": 1000.0,
          "cluster1.slots.useful": 1000.0,
          "fwd_matrix.0.0": 5.0,
          "fwd_matrix.0.1": 7.0,
          "fwd_matrix.1.0": 3.0,
          "fwd_matrix.1.1": 9.0
        }
      }
    },
    {
      "label": "gzip/fdrt",
      "benchmark": "gzip",
      "status": "failed",
      "category": "timeout",
      "attempts": 2,
      "error": "deadline exceeded"
    }
  ]
})";

// --- Decoding --------------------------------------------------------------

TEST(ReportDecode, CampaignDocument)
{
    const report::ReportView view = report::fromJsonText(campaignJson);
    EXPECT_TRUE(view.campaign);
    ASSERT_EQ(view.runs.size(), 2u);
    EXPECT_EQ(view.runs[0].label, "gzip/base");
    EXPECT_TRUE(view.runs[0].ok);
    EXPECT_EQ(view.runs[0].strategy, "base");
    EXPECT_EQ(view.runs[0].cycles, 1000.0);
    EXPECT_EQ(view.runs[0].ipc, 2.0);
    EXPECT_EQ(view.runs[0].accounting.at("slots.useful"), 2000.0);
    EXPECT_FALSE(view.runs[1].ok);
    EXPECT_EQ(view.runs[1].error, "deadline exceeded");
}

TEST(ReportDecode, SingleRunDocument)
{
    const report::ReportView view = report::fromJsonText(R"({
      "benchmark": "twolf",
      "strategy": "fdrt",
      "cycles": 500.0,
      "instructions": 600.0,
      "ipc": 1.2
    })");
    EXPECT_FALSE(view.campaign);
    ASSERT_EQ(view.runs.size(), 1u);
    EXPECT_EQ(view.runs[0].label, "twolf/fdrt");
    EXPECT_FALSE(view.runs[0].hasAccounting());
}

TEST(ReportDecode, MalformedInputThrows)
{
    EXPECT_THROW(report::fromJsonText("not json"), std::exception);
    EXPECT_THROW(report::fromJsonText("[1, 2]"), std::exception);
    EXPECT_THROW(report::fromJsonText(R"({"no": "markers"})"),
                 std::exception);
}

TEST(ReportDecode, IntervalCsv)
{
    const report::IntervalSeries s = report::intervalSeriesFromCsv(
        "gzip", "cycle,ipc,occupancy\n1000,1.500000,3.0\n"
                "2000,1.750000,3.5\n");
    EXPECT_EQ(s.label, "gzip");
    ASSERT_EQ(s.ipc.size(), 2u);
    EXPECT_EQ(s.cycles[1], 2000.0);
    EXPECT_EQ(s.ipc[1], 1.75);
    EXPECT_THROW(report::intervalSeriesFromCsv("x", "a,b\n1,2\n"),
                 std::exception);
}

// --- Rendering -------------------------------------------------------------

TEST(ReportHtml, SelfContainedAndDeterministic)
{
    report::ReportView view = report::fromJsonText(campaignJson);
    report::IntervalSeries series;
    series.label = "gzip/base";
    series.cycles = {1000, 2000, 3000};
    series.ipc = {1.5, 1.75, 1.6};
    view.intervals.push_back(series);

    const std::string html = report::renderHtml(view, "test report");
    // Self-contained: no scripts, no external fetches of any kind.
    EXPECT_EQ(html.find("<script"), std::string::npos);
    EXPECT_EQ(html.find("http://"), std::string::npos);
    EXPECT_EQ(html.find("https://"), std::string::npos);
    EXPECT_EQ(html.find("src="), std::string::npos);
    EXPECT_EQ(html.find("@import"), std::string::npos);
    // The content is actually there.
    EXPECT_NE(html.find("gzip/base"), std::string::npos);
    EXPECT_NE(html.find("failed: deadline exceeded"),
              std::string::npos);
    EXPECT_NE(html.find("wait_fwd1"), std::string::npos);
    EXPECT_NE(html.find("<polyline"), std::string::npos);
    EXPECT_NE(html.find("class=\"heat\""), std::string::npos);
    // Deterministic bytes for identical input.
    EXPECT_EQ(html, report::renderHtml(view, "test report"));
}

TEST(ReportHtml, EscapesLabels)
{
    report::ReportView view;
    report::RunView run;
    run.label = "a<b>&\"c";
    run.ok = false;
    run.error = "<script>alert(1)</script>";
    view.runs.push_back(run);
    const std::string html = report::renderHtml(view, "t");
    EXPECT_EQ(html.find("<script>alert"), std::string::npos);
    EXPECT_NE(html.find("a&lt;b&gt;&amp;&quot;c"), std::string::npos);
}

// --- Comparator ------------------------------------------------------------

TEST(Compare, IdenticalReportsMatch)
{
    const report::ReportView a = report::fromJsonText(campaignJson);
    const report::Comparison cmp =
        report::compareReports(a, a, report::Tolerances{});
    EXPECT_TRUE(cmp.ok());
    EXPECT_TRUE(cmp.deltas.empty());
    EXPECT_EQ(report::renderDeltaTable(cmp), "reports match.\n");
}

TEST(Compare, DriftDetectedAndTolerable)
{
    const report::ReportView a = report::fromJsonText(campaignJson);
    report::ReportView b = a;
    b.runs[0].ipc = 2.1;                       // ~4.76% drift
    b.runs[0].accounting["slots.idle"] = 990;  // 1% drift

    report::Tolerances exact;
    report::Comparison cmp = report::compareReports(a, b, exact);
    EXPECT_FALSE(cmp.ok());
    EXPECT_EQ(cmp.violations(), 2u);
    const std::string table = report::renderDeltaTable(cmp);
    EXPECT_NE(table.find("ipc"), std::string::npos);
    EXPECT_NE(table.find("slots.idle"), std::string::npos);
    EXPECT_NE(table.find("FAIL"), std::string::npos);

    report::Tolerances loose;
    loose.defaultRelPct = 2.0;             // covers idle, not ipc
    cmp = report::compareReports(a, b, loose);
    EXPECT_EQ(cmp.violations(), 1u);
    loose.perMetric["ipc"] = 5.0;
    cmp = report::compareReports(a, b, loose);
    EXPECT_TRUE(cmp.ok());
    EXPECT_EQ(cmp.deltas.size(), 2u);      // still reported, within tol
}

TEST(Compare, StructuralFindings)
{
    const report::ReportView a = report::fromJsonText(campaignJson);

    report::ReportView missing = a;
    missing.runs.pop_back();
    report::Comparison cmp =
        report::compareReports(a, missing, report::Tolerances{});
    EXPECT_FALSE(cmp.ok());
    ASSERT_EQ(cmp.structural.size(), 1u);
    EXPECT_NE(cmp.structural[0].find("gzip/fdrt"), std::string::npos);

    report::ReportView flipped = a;
    flipped.runs[1].ok = true;
    cmp = report::compareReports(a, flipped, report::Tolerances{});
    EXPECT_FALSE(cmp.ok());

    report::ReportView pruned = a;
    pruned.runs[0].accounting.erase("slots.idle");
    cmp = report::compareReports(a, pruned, report::Tolerances{});
    EXPECT_FALSE(cmp.ok());
    ASSERT_EQ(cmp.structural.size(), 1u);
    EXPECT_NE(cmp.structural[0].find("slots.idle"), std::string::npos);
}

// --- End-to-end through the binaries ---------------------------------------

TEST(ReportTools, CtcpsimReportFlowAndCompareGate)
{
    const std::string dir = ::testing::TempDir();
    const std::string json_a = dir + "ctcp_rt_a.json";
    const std::string json_b = dir + "ctcp_rt_b.json";
    const std::string html = dir + "ctcp_rt.html";

    const std::string campaign =
        std::string(CTCP_CTCPSIM_PATH) +
        " --campaign 'bench=gzip;strategy=base,fdrt;budget=20000'"
        " --jobs 2 --accounting --out ";
    ASSERT_EQ(runCmd(campaign + json_a), 0);
    ASSERT_EQ(runCmd(campaign + json_b), 0);

    const std::string a_text = slurp(json_a);
    ASSERT_NE(a_text.find("\"accounting\""), std::string::npos);
    // Determinism across invocations is what makes an exact-compare
    // CI gate viable at all.
    ASSERT_EQ(a_text, slurp(json_b));

    // ctcp_report renders it; the page is self-contained HTML.
    ASSERT_EQ(runCmd(std::string(CTCP_REPORT_PATH) + " " + json_a +
                     " -o " + html),
              0);
    const std::string page = slurp(html);
    EXPECT_NE(page.find("<!DOCTYPE html>"), std::string::npos);
    EXPECT_NE(page.find("gzip/base"), std::string::npos);
    EXPECT_NE(page.find("class=\"heat\""), std::string::npos);
    EXPECT_EQ(page.find("<script"), std::string::npos);
    EXPECT_EQ(page.find("https://"), std::string::npos);

    // Identical reports: exit 0.
    EXPECT_EQ(runCmd(std::string(CTCP_COMPARE_PATH) + " " + json_a +
                     " " + json_b),
              0);

    // Perturb one metric; the gate must trip and name the drift.
    std::string mutated = a_text;
    const std::size_t pos = mutated.find("\"ipc\": ");
    ASSERT_NE(pos, std::string::npos);
    mutated.insert(pos + 7, "9");
    spit(json_b, mutated);
    std::string table;
    EXPECT_EQ(runCmdCapture(std::string(CTCP_COMPARE_PATH) + " " +
                                json_a + " " + json_b,
                            table),
              1);
    EXPECT_NE(table.find("ipc"), std::string::npos);
    EXPECT_NE(table.find("FAIL"), std::string::npos);

    // Usage errors: exit 2.
    EXPECT_EQ(runCmd(std::string(CTCP_COMPARE_PATH)), 2);
    EXPECT_EQ(runCmd(std::string(CTCP_COMPARE_PATH) + " " + json_a +
                     " " + json_b + " --tol nonsense"),
              2);
    EXPECT_EQ(runCmd(std::string(CTCP_REPORT_PATH)), 2);
    // Unreadable input: exit 1.
    EXPECT_EQ(runCmd(std::string(CTCP_REPORT_PATH) + " " + dir +
                     "ctcp_rt_nonexistent.json"),
              1);

    // Single-run --report writes HTML directly from ctcpsim.
    const std::string run_html = dir + "ctcp_rt_run.html";
    const std::string intervals = dir + "ctcp_rt_run.csv";
    ASSERT_EQ(runCmd(std::string(CTCP_CTCPSIM_PATH) +
                     " --bench gzip --instructions 20000"
                     " --interval-stats " + intervals +
                     " --interval 1000 --report " + run_html),
              0);
    const std::string run_page = slurp(run_html);
    EXPECT_NE(run_page.find("gzip/base"), std::string::npos);
    EXPECT_NE(run_page.find("<polyline"), std::string::npos);
    EXPECT_EQ(run_page.find("<script"), std::string::npos);

    for (const std::string &p :
         {json_a, json_b, html, run_html, intervals})
        std::remove(p.c_str());
}

} // namespace
} // namespace ctcp
