/**
 * @file
 * Campaign-engine tests: work-stealing pool correctness, bit-identical
 * determinism of repeated runs, worker-count independence of the
 * aggregated report, per-job failure isolation, and matrix-spec
 * parsing.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "campaign/campaign.hh"
#include "campaign/matrix.hh"
#include "campaign/work_queue.hh"
#include "config/presets.hh"
#include "prog/builder.hh"

namespace ctcp {
namespace {

SimConfig
quickConfig(std::uint64_t budget = 20'000)
{
    SimConfig cfg = baseConfig();
    cfg.instructionLimit = budget;
    return cfg;
}

/** A tiny self-contained program for builder-injection tests. */
Program
tinyProgram()
{
    ProgramBuilder b("tiny");
    b.movi(intReg(1), 5000);
    b.label("top");
    b.addi(intReg(2), intReg(2), 1);
    b.addi(intReg(1), intReg(1), -1);
    b.bne(intReg(1), zeroReg, "top");
    b.halt();
    return b.build();
}

TEST(WorkStealingPool, RunsEveryJobExactlyOnce)
{
    constexpr std::size_t njobs = 64;
    std::vector<std::atomic<int>> hits(njobs);
    for (auto &h : hits)
        h = 0;
    campaign::WorkStealingPool pool(4);
    pool.run(njobs, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < njobs; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "job " << i;
}

TEST(WorkStealingPool, MoreWorkersThanJobs)
{
    std::vector<std::atomic<int>> hits(3);
    for (auto &h : hits)
        h = 0;
    campaign::WorkStealingPool pool(16);
    pool.run(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1);
}

TEST(WorkStealingPool, SerialPathPreservesSubmissionOrder)
{
    std::vector<std::size_t> order;
    campaign::WorkStealingPool pool(1);
    pool.run(8, [&](std::size_t i) { order.push_back(i); });
    ASSERT_EQ(order.size(), 8u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(WorkStealingPool, ZeroJobsIsANoop)
{
    campaign::WorkStealingPool pool(4);
    pool.run(0, [](std::size_t) { FAIL() << "no job should run"; });
}

TEST(Campaign, SameRunTwiceIsBitIdentical)
{
    // The determinism contract underlying every cached or parallel
    // result: identical (config, workload, budget) => identical full
    // stat dump, not just headline numbers.
    const std::vector<campaign::Job> jobs = {
        campaign::makeJob("a", "gzip", quickConfig()),
        campaign::makeJob("b", "gzip", quickConfig()),
    };
    const campaign::Report report = campaign::runCampaign(jobs);
    ASSERT_EQ(report.failed(), 0u);
    const SimResult &a = report.at("a").result;
    const SimResult &b = report.at("b").result;
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.toJson(), b.toJson());
    EXPECT_EQ(a.statsText, b.statsText);
    EXPECT_FALSE(a.statsText.empty());
}

TEST(Campaign, AggregationIndependentOfWorkerCount)
{
    // A 3-workload x 4-strategy campaign (every scheduler path,
    // including issue-time steering) must aggregate to byte-identical
    // JSON and CSV whether run on 1 worker or 4.
    std::vector<campaign::Job> jobs;
    for (const char *bench : {"gzip", "twolf", "adpcm_enc"}) {
        for (AssignStrategy s :
             {AssignStrategy::BaseSlotOrder, AssignStrategy::Fdrt,
              AssignStrategy::Friendly, AssignStrategy::IssueTime}) {
            SimConfig cfg = quickConfig();
            cfg.assign.strategy = s;
            if (s == AssignStrategy::IssueTime)
                cfg.assign.issueTimeLatency = 4;
            jobs.push_back(campaign::makeJob(
                std::string(bench) + "/" + assignStrategyName(s), bench,
                cfg));
        }
    }

    campaign::Options serial;
    serial.jobs = 1;
    campaign::Options parallel;
    parallel.jobs = 4;
    const campaign::Report r1 = campaign::runCampaign(jobs, serial);
    const campaign::Report r4 = campaign::runCampaign(jobs, parallel);

    ASSERT_EQ(r1.failed(), 0u);
    ASSERT_EQ(r4.failed(), 0u);
    EXPECT_EQ(r1.toJson(), r4.toJson());
    EXPECT_EQ(r1.toCsv(), r4.toCsv());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(r1.jobs[i].label, jobs[i].label);
        EXPECT_EQ(r1.jobs[i].result.statsText,
                  r4.jobs[i].result.statsText);
    }
}

TEST(Campaign, HostTimingExcludedFromDefaultExport)
{
    // Host wall-clock metrics vary run to run; they must stay out of
    // the default (determinism-contract) JSON and only appear when
    // explicitly requested.
    std::vector<campaign::Job> jobs;
    jobs.push_back(campaign::makeJob("gzip/base", "gzip", quickConfig()));
    campaign::Options serial;
    serial.jobs = 1;
    const campaign::Report report = campaign::runCampaign(jobs, serial);
    ASSERT_EQ(report.failed(), 0u);

    const SimResult &r = report.jobs[0].result;
    EXPECT_GT(r.hostSeconds, 0.0);
    EXPECT_GT(r.simInstsPerHostSecond(), 0.0);
    ASSERT_TRUE(r.metrics.count("host.seconds"));
    ASSERT_TRUE(r.metrics.count("host.sim_insts_per_sec"));

    EXPECT_EQ(report.toJson().find("host."), std::string::npos);
    EXPECT_EQ(r.toJson().find("host."), std::string::npos);
    EXPECT_NE(report.toJson(true).find("host.seconds"),
              std::string::npos);
    EXPECT_NE(r.toJson(true).find("host.sim_insts_per_sec"),
              std::string::npos);
}

TEST(Campaign, ThrowingBuilderFailsOnlyItsJob)
{
    std::vector<campaign::Job> jobs;
    jobs.push_back(campaign::makeJob("ok-1", "gzip", quickConfig()));
    campaign::Job bomb;
    bomb.label = "bomb";
    bomb.benchmark = "synthetic";
    bomb.config = quickConfig();
    bomb.builder = []() -> Program {
        throw std::runtime_error("workload builder exploded");
    };
    jobs.push_back(bomb);
    jobs.push_back(campaign::makeJob("ok-2", "twolf", quickConfig()));

    const campaign::Report report = campaign::runCampaign(jobs);
    ASSERT_EQ(report.jobs.size(), 3u);
    EXPECT_EQ(report.failed(), 1u);
    EXPECT_TRUE(report.at("ok-1").ok());
    EXPECT_TRUE(report.at("ok-2").ok());
    EXPECT_GT(report.at("ok-1").result.instructions, 0u);
    EXPECT_GT(report.at("ok-2").result.instructions, 0u);

    const campaign::JobOutcome &failed = report.at("bomb");
    EXPECT_FALSE(failed.ok());
    EXPECT_NE(failed.error.find("workload builder exploded"),
              std::string::npos);

    // The failure is visible in both export formats.
    const std::string json = report.toJson();
    EXPECT_NE(json.find("\"status\": \"failed\""), std::string::npos);
    EXPECT_NE(json.find("workload builder exploded"), std::string::npos);
    EXPECT_NE(json.find("\"failed\": 1"), std::string::npos);
    const std::string csv = report.toCsv();
    EXPECT_NE(csv.find("bomb,synthetic,,failed,workload builder "
                       "exploded"),
              std::string::npos);
}

TEST(Campaign, UnknownBenchmarkFailsJobNotProcess)
{
    const std::vector<campaign::Job> jobs = {
        campaign::makeJob("bad", "no_such_bench", quickConfig()),
        campaign::makeJob("good", "gzip", quickConfig()),
    };
    const campaign::Report report = campaign::runCampaign(jobs);
    EXPECT_EQ(report.failed(), 1u);
    EXPECT_FALSE(report.at("bad").ok());
    EXPECT_NE(report.at("bad").error.find("no_such_bench"),
              std::string::npos);
    EXPECT_TRUE(report.at("good").ok());
}

TEST(Campaign, CustomBuilderRunsInsideWorker)
{
    campaign::Job job;
    job.label = "tiny";
    job.benchmark = "tiny";
    job.config = quickConfig(0);   // run to Halt
    job.builder = tinyProgram;

    campaign::Options options;
    options.jobs = 2;
    const campaign::Report report =
        campaign::runCampaign({job, job}, options);
    ASSERT_EQ(report.failed(), 0u);
    EXPECT_EQ(report.jobs[0].result.instructions,
              report.jobs[1].result.instructions);
    EXPECT_GT(report.jobs[0].result.instructions, 10'000u);
}

TEST(Campaign, ProgressReportsEveryJob)
{
    std::vector<campaign::Job> jobs = {
        campaign::makeJob("a", "gzip", quickConfig(5'000)),
        campaign::makeJob("b", "twolf", quickConfig(5'000)),
    };
    campaign::Options options;
    options.jobs = 2;
    std::vector<std::string> lines;
    std::mutex mutex;
    options.progress = [&](const std::string &line) {
        std::lock_guard<std::mutex> lock(mutex);
        lines.push_back(line);
    };
    campaign::runCampaign(jobs, options);
    ASSERT_EQ(lines.size(), 2u);
    // The final line always reports full completion.
    bool saw_final = false;
    for (const std::string &line : lines)
        if (line.find("[2/2]") != std::string::npos)
            saw_final = true;
    EXPECT_TRUE(saw_final);
}

TEST(CampaignMatrix, CrossProductAndLabels)
{
    const std::vector<campaign::Job> jobs = campaign::parseMatrix(
        "bench=gzip,twolf;strategy=base,fdrt;budget=1000");
    ASSERT_EQ(jobs.size(), 4u);
    EXPECT_EQ(jobs[0].label, "gzip/base/base");
    EXPECT_EQ(jobs[1].label, "gzip/base/fdrt");
    EXPECT_EQ(jobs[2].label, "twolf/base/base");
    EXPECT_EQ(jobs[3].label, "twolf/base/fdrt");
    EXPECT_EQ(jobs[1].config.assign.strategy, AssignStrategy::Fdrt);
    EXPECT_EQ(jobs[0].config.instructionLimit, 1000u);
}

TEST(CampaignMatrix, GroupsAndDefaultsExpand)
{
    // Defaults: bench=six, strategy=base, preset=base, budget=300000.
    const std::vector<campaign::Job> defaults = campaign::parseMatrix("");
    EXPECT_EQ(defaults.size(), 6u);
    EXPECT_EQ(defaults[0].config.instructionLimit, 300'000u);

    const std::vector<campaign::Job> media =
        campaign::parseMatrix("bench=media");
    EXPECT_EQ(media.size(), 14u);

    const std::vector<campaign::Job> all =
        campaign::parseMatrix("bench=all");
    EXPECT_EQ(all.size(), 26u);
}

TEST(CampaignMatrix, IssueTimeLatencySuffix)
{
    const std::vector<campaign::Job> jobs = campaign::parseMatrix(
        "bench=gzip;strategy=issue-time:0,issue-time:4");
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_EQ(jobs[0].config.assign.strategy, AssignStrategy::IssueTime);
    EXPECT_EQ(jobs[0].config.assign.issueTimeLatency, 0u);
    EXPECT_EQ(jobs[1].config.assign.issueTimeLatency, 4u);
    EXPECT_EQ(jobs[0].label, "gzip/base/issue-time:0");
}

TEST(CampaignMatrix, TopologyAndClusterDimensions)
{
    const std::vector<campaign::Job> jobs = campaign::parseMatrix(
        "bench=gzip;strategy=adaptive;topology=ring,crossbar;"
        "clusters=2,8;budget=2000");
    ASSERT_EQ(jobs.size(), 4u);
    EXPECT_EQ(jobs[0].label, "gzip/base/adaptive/ring/c2");
    EXPECT_EQ(jobs[1].label, "gzip/base/adaptive/ring/c8");
    EXPECT_EQ(jobs[2].label, "gzip/base/adaptive/crossbar/c2");
    EXPECT_EQ(jobs[3].label, "gzip/base/adaptive/crossbar/c8");
    EXPECT_EQ(jobs[0].config.assign.strategy, AssignStrategy::Adaptive);
    EXPECT_EQ(jobs[0].config.cluster.effectiveTopology(), Topology::Ring);
    EXPECT_EQ(jobs[2].config.cluster.effectiveTopology(),
              Topology::Crossbar);
    EXPECT_EQ(jobs[0].config.cluster.numClusters, 2u);
    EXPECT_EQ(jobs[1].config.cluster.numClusters, 8u);
    // Machine width scales with the cluster count.
    EXPECT_EQ(jobs[1].config.frontEnd.fetchWidth,
              8 * jobs[1].config.cluster.clusterWidth);
}

TEST(CampaignMatrix, TopologyOverridesPresetInterconnectFlags)
{
    // topology=... clears the legacy mesh/bus preset flags so the
    // override wins; the preset's other knobs are kept.
    const std::vector<campaign::Job> jobs = campaign::parseMatrix(
        "bench=gzip;preset=mesh;topology=bus;budget=1000");
    ASSERT_EQ(jobs.size(), 1u);
    EXPECT_EQ(jobs[0].label, "gzip/mesh/base/bus");
    EXPECT_FALSE(jobs[0].config.cluster.mesh);
    EXPECT_EQ(jobs[0].config.cluster.effectiveTopology(), Topology::Bus);
}

TEST(CampaignMatrix, AbsentTopologyAndClustersArePassThrough)
{
    // A spec written before the new axes existed must expand to the
    // exact same jobs — same labels, same configs.
    const std::vector<campaign::Job> jobs = campaign::parseMatrix(
        "bench=gzip;strategy=base,fdrt;budget=1000");
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_EQ(jobs[0].label, "gzip/base/base");
    EXPECT_EQ(jobs[1].label, "gzip/base/fdrt");
    const SimConfig base = baseConfig();
    EXPECT_EQ(jobs[0].config.cluster.numClusters,
              base.cluster.numClusters);
    EXPECT_EQ(jobs[0].config.cluster.effectiveTopology(),
              base.cluster.effectiveTopology());
}

TEST(CampaignMatrix, RejectsBadTopologyAndClusterValues)
{
    EXPECT_THROW(campaign::parseMatrix("topology=torus"),
                 std::invalid_argument);
    EXPECT_THROW(campaign::parseMatrix("clusters=0"),
                 std::invalid_argument);
    EXPECT_THROW(campaign::parseMatrix("clusters=9"),
                 std::invalid_argument);
    EXPECT_THROW(campaign::parseMatrix("clusters=two"),
                 std::invalid_argument);
    EXPECT_THROW(campaign::parseMatrix("clusters="),
                 std::invalid_argument);
}

TEST(CampaignAdaptive, DeterministicAcrossWorkerCounts)
{
    // The adaptive strategy closes a feedback loop through the slot
    // accounting; its interval decisions must still be a pure function
    // of the (config, workload) pair, so an 8-worker campaign over
    // every topology matches the serial one byte for byte.
    const std::vector<campaign::Job> jobs = campaign::parseMatrix(
        "bench=gzip,twolf;strategy=adaptive;"
        "topology=linear,ring,crossbar,hier,bus;budget=20000");
    ASSERT_EQ(jobs.size(), 10u);

    campaign::Options serial;
    serial.jobs = 1;
    campaign::Options parallel;
    parallel.jobs = 8;
    const campaign::Report r1 = campaign::runCampaign(jobs, serial);
    const campaign::Report r8 = campaign::runCampaign(jobs, parallel);

    ASSERT_EQ(r1.failed(), 0u);
    ASSERT_EQ(r8.failed(), 0u);
    EXPECT_EQ(r1.toJson(), r8.toJson());
    EXPECT_EQ(r1.toCsv(), r8.toCsv());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(r1.jobs[i].result.strategy, "adaptive");
        EXPECT_EQ(r1.jobs[i].result.statsText,
                  r8.jobs[i].result.statsText);
        ASSERT_TRUE(r1.jobs[i].result.metrics.count("adaptive.intervals"))
            << jobs[i].label;
        EXPECT_GT(r1.jobs[i].result.metrics.at("adaptive.intervals"), 0.0)
            << jobs[i].label;
    }
}

TEST(CampaignMatrix, PresetDimension)
{
    const std::vector<campaign::Job> jobs = campaign::parseMatrix(
        "bench=gzip;preset=base,mesh,twocluster");
    ASSERT_EQ(jobs.size(), 3u);
    EXPECT_TRUE(jobs[1].config.cluster.mesh);
    EXPECT_EQ(jobs[2].config.cluster.numClusters, 2u);
}

TEST(CampaignMatrix, MultipleBudgetsGetLabelSuffix)
{
    const std::vector<campaign::Job> jobs = campaign::parseMatrix(
        "bench=gzip;budget=1000,2000");
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_EQ(jobs[0].label, "gzip/base/base@1000");
    EXPECT_EQ(jobs[1].label, "gzip/base/base@2000");
}

TEST(CampaignMatrix, RejectsBadSpecs)
{
    EXPECT_THROW(campaign::parseMatrix("bench=not_a_bench"),
                 std::invalid_argument);
    EXPECT_THROW(campaign::parseMatrix("strategy=warp-speed"),
                 std::invalid_argument);
    EXPECT_THROW(campaign::parseMatrix("preset=hypercube"),
                 std::invalid_argument);
    EXPECT_THROW(campaign::parseMatrix("budget=0"),
                 std::invalid_argument);
    EXPECT_THROW(campaign::parseMatrix("budget=soon"),
                 std::invalid_argument);
    EXPECT_THROW(campaign::parseMatrix("colour=red"),
                 std::invalid_argument);
    EXPECT_THROW(campaign::parseMatrix("bench"),
                 std::invalid_argument);
}

TEST(CampaignMatrix, ParsedJobsActuallyRun)
{
    const std::vector<campaign::Job> jobs = campaign::parseMatrix(
        "bench=gzip;strategy=base,fdrt;budget=10000");
    const campaign::Report report = campaign::runCampaign(jobs);
    EXPECT_EQ(report.failed(), 0u);
    EXPECT_EQ(report.at("gzip/base/fdrt").result.strategy, "fdrt");
}

TEST(CampaignWorkers, ParseWorkerCountAcceptsValidValues)
{
    EXPECT_EQ(campaign::parseWorkerCount("0"), 0u);   // hardware threads
    EXPECT_EQ(campaign::parseWorkerCount("1"), 1u);
    EXPECT_EQ(campaign::parseWorkerCount("4"), 4u);
    EXPECT_EQ(campaign::parseWorkerCount("4096"), 4096u);
}

TEST(CampaignWorkers, ParseWorkerCountRejectsBadValues)
{
    EXPECT_THROW(campaign::parseWorkerCount("-1"), std::invalid_argument);
    EXPECT_THROW(campaign::parseWorkerCount("-4"), std::invalid_argument);
    EXPECT_THROW(campaign::parseWorkerCount(""), std::invalid_argument);
    EXPECT_THROW(campaign::parseWorkerCount("four"), std::invalid_argument);
    EXPECT_THROW(campaign::parseWorkerCount("4x"), std::invalid_argument);
    EXPECT_THROW(campaign::parseWorkerCount("4.5"), std::invalid_argument);
    EXPECT_THROW(campaign::parseWorkerCount("4097"), std::invalid_argument);
    EXPECT_THROW(campaign::parseWorkerCount("999999999999999999999"),
                 std::invalid_argument);
}

TEST(CampaignReport, CsvQuotesAwkwardFields)
{
    campaign::Job bomb;
    bomb.label = "a,\"b\"";
    bomb.benchmark = "x";
    bomb.config = quickConfig(1'000);
    bomb.builder = []() -> Program {
        throw std::runtime_error("line1\nline2, with comma");
    };
    const campaign::Report report = campaign::runCampaign({bomb});
    const std::string csv = report.toCsv();
    EXPECT_NE(csv.find("\"a,\"\"b\"\"\""), std::string::npos);
    EXPECT_NE(csv.find("\"line1\nline2, with comma\""),
              std::string::npos);
    // JSON escapes the newline instead.
    const std::string json = report.toJson();
    EXPECT_NE(json.find("line1\\nline2"), std::string::npos);
}

} // namespace
} // namespace ctcp
