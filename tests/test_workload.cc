/**
 * @file
 * Tests for the synthetic workload suite: registry integrity and,
 * parameterized over every benchmark, functional-execution sanity
 * (long-running, self-contained, control-flow diversity) plus
 * determinism of the generated programs.
 */

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "func/executor.hh"
#include "workload/workload.hh"

namespace ctcp {
namespace {

TEST(Registry, SuiteSizesMatchThePaper)
{
    // 12 SPECint2000 programs, 14 MediaBench programs.
    EXPECT_EQ(workloads::names(workloads::Suite::SpecInt).size(), 12u);
    EXPECT_EQ(workloads::names(workloads::Suite::Media).size(), 14u);
    EXPECT_EQ(workloads::all().size(), 26u);
}

TEST(Registry, SelectedSixAreSpecPrograms)
{
    const auto &six = workloads::selectedSix();
    ASSERT_EQ(six.size(), 6u);
    const auto spec = workloads::names(workloads::Suite::SpecInt);
    for (const std::string &name : six) {
        EXPECT_TRUE(workloads::exists(name)) << name;
        EXPECT_NE(std::find(spec.begin(), spec.end(), name), spec.end())
            << name;
    }
}

TEST(Registry, NamesAreUniqueAndDescribed)
{
    std::set<std::string> seen;
    for (const auto &info : workloads::all()) {
        EXPECT_TRUE(seen.insert(info.name).second) << info.name;
        EXPECT_FALSE(info.description.empty()) << info.name;
    }
}

TEST(Registry, ExistsRejectsUnknown)
{
    EXPECT_FALSE(workloads::exists("notabenchmark"));
    EXPECT_TRUE(workloads::exists("gzip"));
}

class WorkloadSweep : public ::testing::TestWithParam<std::string>
{};

TEST_P(WorkloadSweep, RunsFarPastTheSimulationBudget)
{
    Program p = workloads::build(GetParam());
    Executor exec(p);
    DynInst d;
    // Every workload must sustain at least 200k instructions without
    // halting (simulations run millions).
    for (int i = 0; i < 200000; ++i)
        ASSERT_TRUE(exec.step(d)) << "halted after " << i << " instructions";
}

TEST_P(WorkloadSweep, ControlFlowAndMemoryDiversity)
{
    Program p = workloads::build(GetParam());
    Executor exec(p);
    DynInst d;
    std::uint64_t branches = 0, taken = 0, loads = 0, stores = 0;
    std::set<Addr> pcs;
    for (int i = 0; i < 100000; ++i) {
        exec.step(d);
        pcs.insert(d.pc);
        if (d.isBranchOp()) {
            ++branches;
            taken += d.taken;
        }
        loads += d.isLoadOp();
        stores += d.isStoreOp();
    }
    // Realistic dynamic mixes: branches present, some taken, memory
    // traffic present, and a non-trivial static footprint. (Individual
    // kernels differ deliberately: compute-bound ones are store-light.)
    EXPECT_GT(branches, 500u);
    EXPECT_GT(taken, 300u);
    EXPECT_GT(loads + stores, 1000u);
    EXPECT_GT(pcs.size(), 20u);
}

TEST_P(WorkloadSweep, DeterministicStream)
{
    Program p1 = workloads::build(GetParam());
    Program p2 = workloads::build(GetParam());
    ASSERT_EQ(p1.size(), p2.size());
    Executor e1(p1), e2(p2);
    DynInst a, b;
    for (int i = 0; i < 20000; ++i) {
        e1.step(a);
        e2.step(b);
        ASSERT_EQ(a.pc, b.pc) << "diverged at instruction " << i;
        ASSERT_EQ(a.taken, b.taken);
        ASSERT_EQ(a.effAddr, b.effAddr);
    }
}

TEST_P(WorkloadSweep, RegisterDataflowIsClosed)
{
    // Every source register read must have been written first (or be
    // a documented always-initialized register) — catches kernels that
    // read uninitialized temporaries.
    Program p = workloads::build(GetParam());
    Executor exec(p);
    DynInst d;
    std::set<RegId> written{zeroReg};
    for (int i = 0; i < 50000; ++i) {
        exec.step(d);
        if (d.hasDst())
            written.insert(d.dst);
    }
    // Re-run and check reads against the (steady-state) written set.
    Executor exec2(p);
    for (int i = 0; i < 50000; ++i) {
        exec2.step(d);
        if (i < 200)
            continue;   // allow the init preamble to complete
        if (d.hasSrc1()) {
            EXPECT_TRUE(written.count(d.src1))
                << "pc " << d.pc << " reads unwritten r" << int(d.src1);
        }
        if (d.hasSrc2()) {
            EXPECT_TRUE(written.count(d.src2))
                << "pc " << d.pc << " reads unwritten r" << int(d.src2);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, WorkloadSweep,
    ::testing::ValuesIn([] {
        std::vector<std::string> names;
        for (const auto &info : workloads::all())
            names.push_back(info.name);
        return names;
    }()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

} // namespace
} // namespace ctcp
