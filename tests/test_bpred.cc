/**
 * @file
 * Unit tests for the branch predictor: 2-bit counters, hybrid
 * direction prediction, BTB and RAS behaviour.
 */

#include <gtest/gtest.h>

#include "bpred/predictor.hh"

namespace ctcp {
namespace {

BranchPredictorConfig
smallConfig()
{
    BranchPredictorConfig cfg;
    cfg.gshareEntries = 256;
    cfg.bimodalEntries = 256;
    cfg.chooserEntries = 256;
    cfg.historyBits = 8;
    cfg.btbEntries = 16;
    cfg.btbAssoc = 4;
    cfg.rasEntries = 4;
    return cfg;
}

TEST(TwoBitCounter, Saturates)
{
    TwoBitCounter c(0);
    EXPECT_FALSE(c.taken());
    c.update(true);
    EXPECT_FALSE(c.taken());   // 1: still weakly not-taken
    c.update(true);
    EXPECT_TRUE(c.taken());    // 2
    c.update(true);
    c.update(true);
    EXPECT_EQ(c.raw(), 3);     // saturated
    c.update(false);
    EXPECT_TRUE(c.taken());    // 2: hysteresis
    c.update(false);
    EXPECT_FALSE(c.taken());
}

TEST(Predictor, LearnsAlwaysTaken)
{
    BranchPredictor bp(smallConfig());
    const Addr pc = 100;
    for (int i = 0; i < 8; ++i)
        bp.update(pc, true, true, 200);
    EXPECT_TRUE(bp.peekDirection(pc));
}

TEST(Predictor, LearnsAlwaysNotTaken)
{
    BranchPredictor bp(smallConfig());
    const Addr pc = 100;
    for (int i = 0; i < 8; ++i)
        bp.update(pc, true, false, 200);
    EXPECT_FALSE(bp.peekDirection(pc));
}

TEST(Predictor, GshareLearnsAlternatingPattern)
{
    BranchPredictor bp(smallConfig());
    const Addr pc = 64;
    // Train T,N,T,N...: bimodal oscillates but gshare keys on history.
    bool outcome = false;
    int correct = 0;
    for (int i = 0; i < 400; ++i) {
        outcome = !outcome;
        const bool pred = bp.peekDirection(pc);
        if (i >= 200 && pred == outcome)
            ++correct;
        bp.update(pc, true, outcome, 200);
    }
    // After warmup the hybrid should track the alternation well.
    EXPECT_GT(correct, 180);
}

TEST(Predictor, BtbStoresTargets)
{
    BranchPredictor bp(smallConfig());
    bp.update(300, false, true, 4242);
    auto [target, valid] = bp.peekBtb(300);
    EXPECT_TRUE(valid);
    EXPECT_EQ(target, 4242u);
    auto [t2, v2] = bp.peekBtb(301);
    (void)t2;
    EXPECT_FALSE(v2);
}

TEST(Predictor, BtbReplacesWithinSet)
{
    BranchPredictorConfig cfg = smallConfig();
    cfg.btbEntries = 4;   // one set of 4 ways
    cfg.btbAssoc = 4;
    BranchPredictor bp(cfg);
    for (Addr pc = 0; pc < 5; ++pc)
        bp.update(pc * 4, false, true, 1000 + pc);
    // 5 taken branches into 4 ways: exactly one got evicted.
    unsigned resident = 0;
    for (Addr pc = 0; pc < 5; ++pc)
        resident += bp.peekBtb(pc * 4).second ? 1 : 0;
    EXPECT_EQ(resident, 4u);
}

TEST(Predictor, RasLifoOrder)
{
    BranchPredictor bp(smallConfig());
    bp.pushRas(11);
    bp.pushRas(22);
    bp.pushRas(33);
    EXPECT_EQ(bp.popRas(), (std::pair<Addr, bool>{33, true}));
    EXPECT_EQ(bp.popRas(), (std::pair<Addr, bool>{22, true}));
    EXPECT_EQ(bp.popRas(), (std::pair<Addr, bool>{11, true}));
    EXPECT_FALSE(bp.popRas().second);   // empty
}

TEST(Predictor, RasOverflowWraps)
{
    BranchPredictor bp(smallConfig());   // 4 entries
    for (Addr a = 1; a <= 6; ++a)
        bp.pushRas(a);
    // The four most recent survive.
    EXPECT_EQ(bp.popRas().first, 6u);
    EXPECT_EQ(bp.popRas().first, 5u);
    EXPECT_EQ(bp.popRas().first, 4u);
    EXPECT_EQ(bp.popRas().first, 3u);
}

TEST(Predictor, PredictIntegratesRasForReturns)
{
    BranchPredictor bp(smallConfig());
    bp.pushRas(777);
    BranchPrediction pred = bp.predict(50, false, false, true, 51);
    EXPECT_TRUE(pred.taken);
    EXPECT_TRUE(pred.targetValid);
    EXPECT_EQ(pred.target, 777u);
}

TEST(Predictor, PredictPushesOnCalls)
{
    BranchPredictor bp(smallConfig());
    bp.update(60, false, true, 90);   // train BTB for the call
    BranchPrediction pred = bp.predict(60, false, true, false, 61);
    EXPECT_TRUE(pred.taken);
    EXPECT_EQ(bp.popRas(), (std::pair<Addr, bool>{61, true}));
}

TEST(Predictor, PeekDoesNotTrain)
{
    BranchPredictor bp(smallConfig());
    const Addr pc = 12;
    const bool before = bp.peekDirection(pc);
    for (int i = 0; i < 100; ++i)
        bp.peekDirection(pc);
    EXPECT_EQ(bp.peekDirection(pc), before);
}

// Parameterized sweep: the hybrid must converge on strongly biased
// branches regardless of bias direction and PC placement.
class BiasSweep : public ::testing::TestWithParam<std::tuple<bool, Addr>>
{};

TEST_P(BiasSweep, ConvergesToBias)
{
    auto [taken, pc] = GetParam();
    BranchPredictor bp(smallConfig());
    for (int i = 0; i < 16; ++i)
        bp.update(pc, true, taken, pc + 5);
    EXPECT_EQ(bp.peekDirection(pc), taken);
}

INSTANTIATE_TEST_SUITE_P(
    Directions, BiasSweep,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values<Addr>(0, 1, 17, 255, 1024, 65537)));

} // namespace
} // namespace ctcp
