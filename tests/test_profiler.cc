/**
 * @file
 * Unit tests for the Profiler's metric bookkeeping: criticality
 * distributions, dependency accounting, producer-repeat tracking and
 * cluster-migration detection, driven with hand-built TimedInsts.
 */

#include <gtest/gtest.h>

#include "core/profiler.hh"

namespace ctcp {
namespace {

OwnedTimedInst
consumer(Addr pc, int critical_src, bool forwarded, bool inter_trace,
         Addr producer_pc, unsigned distance)
{
    OwnedTimedInst t;
    t.dyn.pc = pc;
    t.dyn.op = Opcode::Add;
    t.dyn.src1 = intReg(1);
    t.dyn.src2 = intReg(2);
    t.ops[0].valid = true;
    t.ops[1].valid = true;
    t.ops[0].fromRF = true;
    t.ops[1].fromRF = true;
    if (forwarded && critical_src >= 1) {
        OperandState &op = t.ops[critical_src - 1];
        op.fromRF = false;
        op.producerPc = producer_pc;
    }
    t.cold().criticalSrc = critical_src;
    t.cold().criticalForwarded = forwarded;
    t.cold().criticalInterTrace = inter_trace;
    t.cold().criticalDistance = distance;
    t.cold().criticalProducerPc = producer_pc;
    return t;
}

TEST(Profiler, CriticalSourceDistribution)
{
    Profiler prof;
    prof.onExecute(consumer(1, 0, false, false, 0, 0));   // RF critical
    prof.onExecute(consumer(2, 1, true, false, 100, 0));  // RS1
    prof.onExecute(consumer(3, 2, true, false, 100, 0));  // RS2
    prof.onExecute(consumer(4, 1, true, false, 100, 0));  // RS1
    EXPECT_DOUBLE_EQ(prof.pctCriticalFromRF(), 25.0);
    EXPECT_DOUBLE_EQ(prof.pctCriticalFromRs1(), 50.0);
    EXPECT_DOUBLE_EQ(prof.pctCriticalFromRs2(), 25.0);
}

TEST(Profiler, ForwardingDistanceAndIntraCluster)
{
    Profiler prof;
    prof.onExecute(consumer(1, 1, true, false, 100, 0));
    prof.onExecute(consumer(2, 1, true, false, 100, 2));
    prof.onExecute(consumer(3, 1, true, true, 100, 1));
    EXPECT_DOUBLE_EQ(prof.meanForwardingDistance(), 1.0);
    EXPECT_NEAR(prof.pctIntraClusterForwarding(), 100.0 / 3.0, 1e-9);
    EXPECT_DOUBLE_EQ(prof.meanInterTraceDistance(), 1.0);
    EXPECT_DOUBLE_EQ(prof.meanIntraTraceDistance(), 1.0);
    EXPECT_DOUBLE_EQ(prof.pctInterTraceIntraCluster(), 0.0);
}

TEST(Profiler, CriticalDependencyShares)
{
    Profiler prof;
    // Two forwarded operands, only src1 critical: 1 of 2 deps critical.
    OwnedTimedInst t = consumer(1, 1, true, true, 100, 0);
    t.ops[1].fromRF = false;
    t.ops[1].producerPc = 200;
    prof.onExecute(t);
    EXPECT_DOUBLE_EQ(prof.pctDepsCritical(), 50.0);
    EXPECT_DOUBLE_EQ(prof.pctCriticalInterTrace(), 100.0);
}

TEST(Profiler, ProducerRepeatTracking)
{
    Profiler prof;
    prof.onExecute(consumer(10, 1, true, false, 100, 0));
    prof.onExecute(consumer(10, 1, true, false, 100, 0));   // repeat
    prof.onExecute(consumer(10, 1, true, false, 300, 0));   // change
    prof.onExecute(consumer(10, 1, true, false, 300, 0));   // repeat
    // 4 forwarded events, 2 of them repeats (the denominator includes
    // the history-less first event, negligible at real run lengths).
    EXPECT_DOUBLE_EQ(prof.repeatRs1(), 50.0);
}

TEST(Profiler, RepeatIsPerConsumerPc)
{
    Profiler prof;
    // Different consumers tracking the same producer don't interfere.
    prof.onExecute(consumer(10, 1, true, false, 100, 0));
    prof.onExecute(consumer(20, 1, true, false, 100, 0));
    prof.onExecute(consumer(10, 1, true, false, 100, 0));
    prof.onExecute(consumer(20, 1, true, false, 100, 0));
    EXPECT_DOUBLE_EQ(prof.repeatRs1(), 100.0 * 2.0 / 4.0);
}

TEST(Profiler, MigrationDetection)
{
    Profiler prof;
    OwnedTimedInst a;
    a.dyn.pc = 50;
    a.cluster = 1;
    prof.onRetire(a);           // first visit: no revisit counted
    prof.onRetire(a);           // same cluster: revisit, no migration
    a.cluster = 2;
    prof.onRetire(a);           // migrated
    EXPECT_DOUBLE_EQ(prof.migrationAllPct(), 50.0);
    EXPECT_DOUBLE_EQ(prof.migrationChainPct(), 0.0);   // not a member
}

TEST(Profiler, ChainMigrationSubset)
{
    Profiler prof;
    OwnedTimedInst a;
    a.dyn.pc = 60;
    a.cluster = 0;
    a.profile.role = ChainRole::Follower;
    a.profile.chainCluster = 0;
    prof.onRetire(a);
    a.cluster = 3;
    prof.onRetire(a);
    EXPECT_DOUBLE_EQ(prof.migrationChainPct(), 100.0);
}

TEST(Profiler, TraceCacheShare)
{
    Profiler prof;
    OwnedTimedInst a;
    a.dyn.pc = 1;
    a.fromTraceCache = true;
    prof.onRetire(a);
    a.dyn.pc = 2;
    a.fromTraceCache = false;
    prof.onRetire(a);
    EXPECT_DOUBLE_EQ(prof.pctFromTraceCache(), 50.0);
    EXPECT_EQ(prof.retired(), 2u);
}

TEST(Profiler, InstructionsWithoutInputsExcluded)
{
    Profiler prof;
    OwnedTimedInst none;
    none.dyn.pc = 5;
    none.dyn.op = Opcode::MovI;   // no register inputs
    prof.onExecute(none);
    prof.onExecute(consumer(6, 0, false, false, 0, 0));
    // Only the consumer counts toward the Figure 4 denominator.
    EXPECT_DOUBLE_EQ(prof.pctCriticalFromRF(), 100.0);
}

TEST(Profiler, DumpContainsEveryMetric)
{
    Profiler prof;
    prof.onExecute(consumer(1, 1, true, true, 100, 2));
    prof.onRetire(consumer(1, 1, true, true, 100, 2));
    StatDump dump;
    prof.dumpStats(dump);
    const std::string text = dump.render();
    for (const char *key :
         {"prof.retired", "prof.pct_from_tc", "prof.pct_crit_rs1",
          "prof.pct_deps_critical", "prof.repeat_rs1",
          "prof.pct_intra_cluster_fwd", "prof.mean_fwd_distance",
          "prof.migration_all_pct"})
        EXPECT_NE(text.find(key), std::string::npos) << key;
}

} // namespace
} // namespace ctcp
