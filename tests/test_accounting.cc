/**
 * @file
 * Cycle-accounting tests: the closed issue-slot taxonomy.
 *
 * The load-bearing property is conservation — every cluster's
 * attributed slot-cycles sum to exactly cycles x issue width, for
 * every assignment strategy, with the invariant checker on. On top of
 * that: the taxonomy must be invisible to the golden contract
 * (default serializations byte-identical whether accounting runs or
 * not), exported only behind the explicit flag, and round-trip
 * through the campaign journal.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "campaign/journal.hh"
#include "campaign/matrix.hh"
#include "config/presets.hh"
#include "core/simulator.hh"
#include "obs/accounting.hh"
#include "workload/workload.hh"

namespace ctcp {
namespace {

SimResult
runWithAccounting(AssignStrategy strategy, const std::string &bench,
                  std::uint64_t budget, unsigned check_level)
{
    SimConfig cfg = baseConfig();
    cfg.assign.strategy = strategy;
    cfg.instructionLimit = budget;
    cfg.checkLevel = check_level;
    cfg.obs.accounting = true;
    Program prog = workloads::build(bench);
    CtcpSimulator sim(cfg, prog);
    return sim.run();
}

double
acct(const SimResult &r, const std::string &key)
{
    const auto it = r.accounting.find(key);
    EXPECT_NE(it, r.accounting.end()) << "missing accounting key " << key;
    return it != r.accounting.end() ? it->second : 0.0;
}

// --- The conservation law --------------------------------------------------

class AccountingConservation
    : public ::testing::TestWithParam<AssignStrategy>
{
};

TEST_P(AccountingConservation, SlotsSumToCyclesTimesWidth)
{
    // checkLevel 1: the per-cycle invariant checker must coexist with
    // the accounting hooks without perturbing either.
    const SimResult r =
        runWithAccounting(GetParam(), "gzip", 40'000, 1);
    const double cycles = acct(r, "cycles");
    const auto clusters = static_cast<unsigned>(acct(r, "num_clusters"));
    const auto width = static_cast<unsigned>(acct(r, "cluster_width"));
    ASSERT_GT(cycles, 0.0);
    ASSERT_GT(clusters, 0u);
    ASSERT_GT(width, 0u);

    double machine = 0.0;
    for (unsigned c = 0; c < clusters; ++c) {
        double cluster_sum = 0.0;
        for (unsigned k = 0; k < numSlotCats; ++k)
            cluster_sum += acct(r, "cluster" + std::to_string(c) +
                                       ".slots." +
                                       slotCatName(static_cast<SlotCat>(k)));
        // Exact, not approximate: every slot of every cycle must land
        // in exactly one category.
        EXPECT_EQ(cluster_sum, cycles * width) << "cluster " << c;
        machine += cluster_sum;
    }
    EXPECT_EQ(machine, acct(r, "slots.total"));
    EXPECT_EQ(machine, cycles * clusters * width);

    // The machine-wide per-category rollup must agree with the
    // per-cluster breakdown.
    for (unsigned k = 0; k < numSlotCats; ++k) {
        const char *name = slotCatName(static_cast<SlotCat>(k));
        double sum = 0.0;
        for (unsigned c = 0; c < clusters; ++c)
            sum += acct(r, "cluster" + std::to_string(c) + ".slots." +
                               name);
        EXPECT_EQ(sum, acct(r, std::string("slots.") + name)) << name;
    }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, AccountingConservation,
                         ::testing::Values(AssignStrategy::BaseSlotOrder,
                                           AssignStrategy::Friendly,
                                           AssignStrategy::Fdrt,
                                           AssignStrategy::IssueTime,
                                           AssignStrategy::Adaptive),
                         [](const auto &info) {
                             switch (info.param) {
                               case AssignStrategy::BaseSlotOrder:
                                 return "base";
                               case AssignStrategy::Friendly:
                                 return "friendly";
                               case AssignStrategy::Fdrt:
                                 return "fdrt";
                               case AssignStrategy::IssueTime:
                                 return "issue_time";
                               case AssignStrategy::Adaptive:
                                 return "adaptive";
                             }
                             return "unknown";
                         });

// --- The conservation law across the design space --------------------------

/**
 * The property that makes the topology x policy engine trustworthy:
 * for EVERY topology, cluster count and strategy, the taxonomy stays
 * closed (conservation), and the wait_fwdN bins beyond the topology's
 * reachable hop support stay exactly zero (a crossbar machine that
 * books 2-hop waits has a broken distance matrix).
 */
class DesignSpaceConservation : public ::testing::TestWithParam<Topology>
{
};

TEST_P(DesignSpaceConservation, ClosedTaxonomyOnEveryMachineShape)
{
    const Topology topo = GetParam();
    const Program prog = workloads::build("gzip");
    for (const unsigned clusters : {2u, 4u, 8u}) {
        for (const AssignStrategy strategy :
             {AssignStrategy::BaseSlotOrder, AssignStrategy::Friendly,
              AssignStrategy::Fdrt, AssignStrategy::IssueTime,
              AssignStrategy::Adaptive}) {
            SCOPED_TRACE(std::string(topologyName(topo)) + "/c" +
                         std::to_string(clusters) + "/" +
                         assignStrategyName(strategy));
            SimConfig cfg = baseConfig();
            cfg.cluster.topology = topo;
            applyMachineScale(cfg, clusters, cfg.cluster.clusterWidth);
            cfg.assign.strategy = strategy;
            cfg.instructionLimit = 15'000;
            cfg.checkLevel = 1;
            cfg.obs.accounting = true;
            CtcpSimulator sim(cfg, prog);
            const SimResult r = sim.run();

            const double cycles = acct(r, "cycles");
            const auto width =
                static_cast<unsigned>(acct(r, "cluster_width"));
            ASSERT_GT(cycles, 0.0);
            double machine = 0.0;
            for (unsigned c = 0; c < clusters; ++c) {
                double cluster_sum = 0.0;
                for (unsigned k = 0; k < numSlotCats; ++k)
                    cluster_sum +=
                        acct(r, "cluster" + std::to_string(c) +
                                    ".slots." +
                                    slotCatName(static_cast<SlotCat>(k)));
                EXPECT_EQ(cluster_sum, cycles * width)
                    << "cluster " << c;
                machine += cluster_sum;
            }
            EXPECT_EQ(machine, acct(r, "slots.total"));

            // Wait bins past the topology's reachable hop support must
            // be structurally zero.
            const Interconnect icn(cfg.cluster);
            if (icn.maxDistance() < 2) {
                EXPECT_EQ(acct(r, "slots.wait_fwd2"), 0.0);
            }
            if (icn.maxDistance() < 3) {
                EXPECT_EQ(acct(r, "slots.wait_fwd3"), 0.0);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, DesignSpaceConservation,
                         ::testing::Values(Topology::LinearChain,
                                           Topology::Ring,
                                           Topology::Crossbar,
                                           Topology::Hierarchical,
                                           Topology::Bus),
                         [](const auto &info) {
                             return topologyName(info.param);
                         });

// --- Plausibility of the attribution ---------------------------------------

TEST(Accounting, UsefulSlotsMatchRetireBudgetScale)
{
    const SimResult r = runWithAccounting(AssignStrategy::BaseSlotOrder,
                                          "gzip", 40'000, 0);
    // Useful slots are dispatches; at least one per retired
    // instruction (squashed work can push it higher).
    EXPECT_GE(acct(r, "slots.useful"),
              static_cast<double>(r.instructions));
    EXPECT_LT(acct(r, "slots.useful"), acct(r, "slots.total"));
}

TEST(Accounting, ForwardingMatrixHasOffDiagonalTraffic)
{
    const SimResult r = runWithAccounting(AssignStrategy::BaseSlotOrder,
                                          "gzip", 40'000, 0);
    const auto clusters = static_cast<int>(acct(r, "num_clusters"));
    double off_diagonal = 0.0, diagonal = 0.0;
    for (int f = 0; f < clusters; ++f)
        for (int t = 0; t < clusters; ++t) {
            const double v = acct(r, "fwd_matrix." + std::to_string(f) +
                                         "." + std::to_string(t));
            (f == t ? diagonal : off_diagonal) += v;
        }
    // A clustered machine without inter-cluster value traffic means
    // the hooks are dead; the diagonal is intra-cluster bypass.
    EXPECT_GT(off_diagonal, 0.0);
    EXPECT_GT(diagonal, 0.0);
    EXPECT_EQ(diagonal + off_diagonal, acct(r, "forwards.total"));
}

TEST(Accounting, BusWaitsBinAsSingleHop)
{
    // On the shared bus every remote cluster is one broadcast away, so
    // the distance matrix must book ALL inter-cluster waiting as
    // wait_fwd1 — a bus machine with 2-hop waits means the special
    // case regressed into the linear distance formula.
    SimConfig cfg = baseConfig();
    cfg.cluster.topology = Topology::Bus;
    cfg.instructionLimit = 40'000;
    cfg.obs.accounting = true;
    const Program prog = workloads::build("gzip");
    const SimResult r = CtcpSimulator(cfg, prog).run();
    EXPECT_GT(acct(r, "slots.wait_fwd1"), 0.0);
    EXPECT_EQ(acct(r, "slots.wait_fwd2"), 0.0);
    EXPECT_EQ(acct(r, "slots.wait_fwd3"), 0.0);

    // The legacy flag spells the same machine; its run must be
    // byte-identical, accounting included.
    SimConfig legacy = baseConfig();
    legacy.cluster.bus = true;
    legacy.instructionLimit = 40'000;
    legacy.obs.accounting = true;
    const SimResult alias = CtcpSimulator(legacy, prog).run();
    EXPECT_EQ(r.toJson(false, true), alias.toJson(false, true));
}

TEST(Accounting, AdaptiveFeedbackDoesNotLeakIntoExports)
{
    // Strategy Adaptive runs the taxonomy internally as its feedback
    // signal; without the user-facing flag the accounting block must
    // stay empty while the chooser's own telemetry still exports.
    SimConfig cfg = baseConfig();
    cfg.assign.strategy = AssignStrategy::Adaptive;
    cfg.instructionLimit = 30'000;
    const Program prog = workloads::build("gzip");
    const SimResult r = CtcpSimulator(cfg, prog).run();
    EXPECT_TRUE(r.accounting.empty());
    EXPECT_EQ(r.toJson(false, true).find("\"accounting\""),
              std::string::npos);
    EXPECT_NE(r.metrics.find("adaptive.switches"), r.metrics.end());
    EXPECT_NE(r.metrics.find("adaptive.intervals"), r.metrics.end());
}

TEST(Accounting, MigrationCountersExportedForFdrt)
{
    const SimResult r = runWithAccounting(AssignStrategy::Fdrt, "gzip",
                                          40'000, 0);
    EXPECT_NE(r.accounting.find("migration.revisits"),
              r.accounting.end());
    EXPECT_NE(r.accounting.find("migration.chain_revisits"),
              r.accounting.end());
}

// --- Golden invisibility ---------------------------------------------------

TEST(Accounting, DefaultSerializationsByteIdenticalEitherWay)
{
    const std::vector<campaign::Job> jobs = campaign::parseMatrix(
        "bench=gzip;strategy=base,fdrt;budget=20000");
    campaign::Options plain;
    plain.jobs = 2;
    campaign::Options counted = plain;
    counted.accounting = true;

    const campaign::Report off = campaign::runCampaign(jobs, plain);
    const campaign::Report on = campaign::runCampaign(jobs, counted);
    ASSERT_EQ(off.failed(), 0u);
    ASSERT_EQ(on.failed(), 0u);

    // The golden contract: default JSON and CSV do not change when
    // accounting runs — neither from perturbed simulation nor from
    // leaked keys.
    EXPECT_EQ(off.toJson(), on.toJson());
    EXPECT_EQ(off.toCsv(), on.toCsv());

    // And the opt-in flag is the only way the taxonomy surfaces.
    EXPECT_EQ(on.toJson().find("\"accounting\""), std::string::npos);
    EXPECT_NE(on.toJson(false, true).find("\"accounting\""),
              std::string::npos);
    EXPECT_NE(on.toJson(false, true).find("slots.useful"),
              std::string::npos);
    EXPECT_NE(on.toCsv(true).find("slots_useful_pct"),
              std::string::npos);
    // Accounting-off jobs have nothing to export even when asked.
    EXPECT_EQ(off.toJson(false, true).find("\"accounting\""),
              std::string::npos);
}

TEST(Accounting, SingleRunJsonGatedByFlag)
{
    const SimResult r = runWithAccounting(AssignStrategy::BaseSlotOrder,
                                          "gzip", 20'000, 0);
    ASSERT_FALSE(r.accounting.empty());
    EXPECT_EQ(r.toJson().find("\"accounting\""), std::string::npos);
    const std::string with = r.toJson(false, true);
    EXPECT_NE(with.find("\"accounting\""), std::string::npos);
    EXPECT_NE(with.find("\"slots.total\""), std::string::npos);
}

// --- Journal round-trip ----------------------------------------------------

TEST(Accounting, JournalRoundTripsAccountingBlock)
{
    campaign::JobOutcome outcome;
    outcome.label = "gzip/base";
    outcome.benchmark = "gzip";
    outcome.status = campaign::JobStatus::Ok;
    outcome.result = runWithAccounting(AssignStrategy::BaseSlotOrder,
                                       "gzip", 20'000, 0);
    ASSERT_FALSE(outcome.result.accounting.empty());

    const std::string line = campaign::encodeJournalRecord(7, outcome);
    campaign::JournalRecord record;
    ASSERT_TRUE(campaign::decodeJournalRecord(line, record));
    EXPECT_EQ(record.index, 7u);
    EXPECT_EQ(record.outcome.result.accounting,
              outcome.result.accounting);
    // The replayed result must serialize identically — that is what
    // makes resumed campaigns byte-identical.
    EXPECT_EQ(record.outcome.result.toJson(false, true),
              outcome.result.toJson(false, true));
}

// --- Unit-level taxonomy behaviour -----------------------------------------

TEST(CycleAccountingUnit, WaitCategoryClampsAtThreeHops)
{
    EXPECT_EQ(CycleAccounting::waitCategory(0), SlotCat::WaitIntra);
    EXPECT_EQ(CycleAccounting::waitCategory(1), SlotCat::WaitFwd1);
    EXPECT_EQ(CycleAccounting::waitCategory(2), SlotCat::WaitFwd2);
    EXPECT_EQ(CycleAccounting::waitCategory(3), SlotCat::WaitFwd3);
    EXPECT_EQ(CycleAccounting::waitCategory(9), SlotCat::WaitFwd3);
}

TEST(CycleAccountingUnit, EmptySlotPriorityIsBackpressureFirst)
{
    const ClusterConfig cc = baseConfig().cluster;
    const Interconnect icn(cc);
    CycleAccounting acct(cc.numClusters, cc.clusterWidth, icn);

    // Cycle 1: RS-full on cluster 0 beats everything; cluster 1 sees
    // the ROB-full flag; a flag noted THIS cycle explains NEXT
    // cycle's empty slots (flags are double-buffered).
    acct.beginCycle(CycleAccounting::FetchState::Flowing);
    acct.noteRsFull(0);
    acct.noteRobFull();
    acct.addEmptySlots(0, 1);
    acct.addEmptySlots(1, 1);
    EXPECT_EQ(acct.slots(0, SlotCat::Idle), 1u);   // flags not yet visible
    EXPECT_EQ(acct.slots(1, SlotCat::Idle), 1u);

    acct.beginCycle(CycleAccounting::FetchState::TcMiss);
    acct.addEmptySlots(0, 2);
    acct.addEmptySlots(1, 2);
    EXPECT_EQ(acct.slots(0, SlotCat::RsFull), 2u);
    EXPECT_EQ(acct.slots(1, SlotCat::RobFull), 2u);

    // Cycle 3: no back-pressure flags pending, so the fetch state
    // decides; then with fetch flowing, slots are genuinely idle.
    acct.beginCycle(CycleAccounting::FetchState::Redirect);
    acct.addEmptySlots(0, 3);
    EXPECT_EQ(acct.slots(0, SlotCat::FetchRedirect), 3u);
    acct.beginCycle(CycleAccounting::FetchState::TcMiss);
    acct.addEmptySlots(1, 1);
    EXPECT_EQ(acct.slots(1, SlotCat::FetchTcMiss), 1u);
    acct.beginCycle(CycleAccounting::FetchState::Flowing);
    acct.addEmptySlots(0, 4);
    EXPECT_EQ(acct.slots(0, SlotCat::Idle), 5u);

    EXPECT_EQ(acct.cycles(), 5u);
}

TEST(CycleAccountingUnit, ExportIsComplete)
{
    const ClusterConfig cc = baseConfig().cluster;
    const Interconnect icn(cc);
    CycleAccounting acct(cc.numClusters, cc.clusterWidth, icn);
    acct.beginCycle(CycleAccounting::FetchState::Flowing);
    acct.addSlots(2, SlotCat::Useful, 3);
    acct.noteForward(1, 3);

    std::map<std::string, double> out;
    acct.exportTo(out);
    EXPECT_EQ(out.at("cycles"), 1.0);
    EXPECT_EQ(out.at("slots.useful"), 3.0);
    EXPECT_EQ(out.at("cluster2.slots.useful"), 3.0);
    EXPECT_EQ(out.at("fwd_matrix.1.3"), 1.0);
    EXPECT_EQ(out.at("forwards.total"), 1.0);
    // Every (cluster, category) pair exports, zeros included, so
    // comparator runs never see structurally different reports.
    for (unsigned c = 0; c < cc.numClusters; ++c)
        for (unsigned k = 0; k < numSlotCats; ++k)
            EXPECT_NE(out.find("cluster" + std::to_string(c) +
                               ".slots." +
                               slotCatName(static_cast<SlotCat>(k))),
                      out.end());
}

} // namespace
} // namespace ctcp
