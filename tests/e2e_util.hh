/**
 * @file
 * Shared harness for end-to-end service tests (test_service_e2e,
 * test_shard_e2e): spawn real ctcpd daemons on private sockets, drive
 * them through ctcpctl, and capture command output.
 *
 * Including targets must define CTCP_CTCPD_PATH, CTCP_CTCPCTL_PATH and
 * CTCP_CTCPSIM_PATH (configure-time binary paths).
 */

#ifndef CTCPSIM_TESTS_E2E_UTIL_HH
#define CTCPSIM_TESTS_E2E_UTIL_HH

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "service/client.hh"
#include "service/http.hh"

namespace e2e {

struct CommandResult
{
    int status = -1;
    std::string output; // stdout only
};

/** Run a shell command, capturing exit status and stdout. */
inline CommandResult
run(const std::string &cmd)
{
    CommandResult result;
    FILE *pipe = ::popen((cmd + " 2>/dev/null").c_str(), "r");
    if (!pipe)
        return result;
    char buffer[4096];
    std::size_t n;
    while ((n = std::fread(buffer, 1, sizeof(buffer), pipe)) > 0)
        result.output.append(buffer, n);
    const int rc = ::pclose(pipe);
    result.status = WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
    return result;
}

/** Run a command and capture stderr (for diagnostics assertions). */
inline std::string
runStderr(const std::string &cmd)
{
    std::string output;
    FILE *pipe = ::popen((cmd + " 2>&1 1>/dev/null").c_str(), "r");
    if (!pipe)
        return output;
    char buffer[4096];
    std::size_t n;
    while ((n = std::fread(buffer, 1, sizeof(buffer), pipe)) > 0)
        output.append(buffer, n);
    ::pclose(pipe);
    return output;
}

inline std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

inline std::string
chomp(std::string text)
{
    while (!text.empty() &&
           (text.back() == '\n' || text.back() == '\r'))
        text.pop_back();
    return text;
}

/** One daemon instance on a private socket + state dir. */
class Daemon
{
  public:
    explicit Daemon(const std::string &tag, unsigned workers = 2,
                    std::vector<std::string> extraArgs = {})
        : dir_(::testing::TempDir() + "ctcp_e2e_" + tag),
          socket_(dir_ + "/d.sock"), state_(dir_ + "/state"),
          extraArgs_(std::move(extraArgs))
    {
        // State from a previous suite invocation would resume into
        // this daemon and trivialize the crash/resume scenarios.
        std::filesystem::remove_all(dir_);
        ::mkdir(dir_.c_str(), 0755);
        start(workers);
    }

    ~Daemon() { kill(); }

    void start(unsigned workers = 2)
    {
        pid_ = ::fork();
        ASSERT_GE(pid_, 0);
        if (pid_ == 0) {
            // Quiet child: the test asserts over the API, not logs.
            ::freopen("/dev/null", "w", stdout);
            ::freopen("/dev/null", "w", stderr);
            const std::string workers_text = std::to_string(workers);
            std::vector<const char *> argv = {
                CTCP_CTCPD_PATH,     "--socket",  socket_.c_str(),
                "--state-dir",       state_.c_str(), "--workers",
                workers_text.c_str()};
            for (const std::string &arg : extraArgs_)
                argv.push_back(arg.c_str());
            argv.push_back(nullptr);
            ::execv(CTCP_CTCPD_PATH,
                    const_cast<char *const *>(argv.data()));
            ::_exit(127);
        }
        waitReady();
    }

    /** Block until the daemon answers /v1/ping (bounded). */
    void waitReady()
    {
        for (int i = 0; i < 100; ++i) {
            ctcp::service::HttpResponse resp;
            std::string error;
            if (ctcp::service::httpRequest(socket_, "GET", "/v1/ping",
                                           "", resp, error) &&
                resp.status == 200)
                return;
            ::usleep(100 * 1000);
        }
        FAIL() << "daemon never became ready on " << socket_;
    }

    /** SIGKILL (simulated crash); reap the child. */
    void kill()
    {
        if (pid_ <= 0)
            return;
        ::kill(pid_, SIGKILL);
        int status = 0;
        ::waitpid(pid_, &status, 0);
        pid_ = -1;
    }

    /** SIGTERM (graceful); @return the daemon's exit status. */
    int terminate()
    {
        if (pid_ <= 0)
            return -1;
        ::kill(pid_, SIGTERM);
        int status = 0;
        ::waitpid(pid_, &status, 0);
        pid_ = -1;
        return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    }

    /** ctcpctl against this daemon. */
    CommandResult ctl(const std::string &args) const
    {
        return run(std::string(CTCP_CTCPCTL_PATH) + " --socket " +
                   socket_ + " " + args);
    }

    const std::string &dir() const { return dir_; }
    const std::string &socketPath() const { return socket_; }
    const std::string &statePath() const { return state_; }

  private:
    std::string dir_;
    std::string socket_;
    std::string state_;
    std::vector<std::string> extraArgs_;
    pid_t pid_ = -1;
};

/** Write a spec file under @p dir and return its path. */
inline std::string
writeSpec(const std::string &dir, const std::string &spec)
{
    const std::string path = dir + "/spec.txt";
    std::ofstream out(path, std::ios::binary);
    out << spec;
    return path;
}

/** Reference report: `ctcpsim --campaign` over the same matrix. */
inline std::string
batchReport(const std::string &dir, const std::string &matrix)
{
    const std::string out = dir + "/batch.json";
    const CommandResult batch =
        run(std::string(CTCP_CTCPSIM_PATH) + " --campaign '" + matrix +
            "' --jobs 2 --out " + out);
    EXPECT_EQ(batch.status, 0);
    return slurp(out);
}

} // namespace e2e

#endif // CTCPSIM_TESTS_E2E_UTIL_HH
