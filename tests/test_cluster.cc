/**
 * @file
 * Unit tests for the execution cluster: reservation stations, FU pool,
 * dispatch selection, and the interconnect distance model.
 */

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "cluster/cluster.hh"
#include "cluster/interconnect.hh"

namespace ctcp {
namespace {

/**
 * Test stand-in for the simulator's DispatchClient: same concrete
 * interface Cluster::dispatch expects, backed by std::function so
 * individual tests can swap behavior.
 */
struct TestHooks
{
    std::function<bool(const TimedInst &, Cycle)> readyFn =
        [](const TimedInst &, Cycle) { return true; };
    std::function<Cycle(TimedInst &, Cycle)> executeFn =
        [](TimedInst &, Cycle now) { return now + 1; };

    bool
    ready(const TimedInst &inst, Cycle now) const
    {
        return readyFn(inst, now);
    }

    Cycle
    execute(TimedInst &inst, Cycle now) const
    {
        return executeFn(inst, now);
    }
};

OwnedTimedInst
makeInst(InstSeqNum seq, Opcode op)
{
    OwnedTimedInst t;
    t.dyn.seq = seq;
    t.dyn.op = op;
    return t;
}

TEST(Interconnect, LinearDistances)
{
    ClusterConfig cfg;   // 4 clusters, hop 2, linear
    Interconnect ic(cfg);
    EXPECT_EQ(ic.distance(0, 0), 0u);
    EXPECT_EQ(ic.distance(0, 1), 1u);
    EXPECT_EQ(ic.distance(0, 3), 3u);
    EXPECT_EQ(ic.distance(3, 0), 3u);
    EXPECT_EQ(ic.latency(0, 3), 6u);   // 3 hops x 2 cycles
    EXPECT_TRUE(ic.adjacent(1, 2));
    EXPECT_FALSE(ic.adjacent(0, 2));
}

TEST(Interconnect, MeshClosesTheRing)
{
    ClusterConfig cfg;
    cfg.mesh = true;
    Interconnect ic(cfg);
    EXPECT_EQ(ic.distance(0, 3), 1u);   // end clusters adjacent
    EXPECT_EQ(ic.distance(0, 2), 2u);
    EXPECT_EQ(ic.latency(0, 3), 2u);
    // A mesh of 4 never needs more than 2 hops.
    for (ClusterId a = 0; a < 4; ++a)
        for (ClusterId b = 0; b < 4; ++b)
            EXPECT_LE(ic.distance(a, b), 2u);
}

TEST(Interconnect, CentralityPrefersMiddle)
{
    ClusterConfig cfg;
    Interconnect ic(cfg);
    auto order = ic.byCentrality();
    ASSERT_EQ(order.size(), 4u);
    // The two middle clusters come first, the ends last.
    EXPECT_TRUE(order[0] == 1 || order[0] == 2);
    EXPECT_TRUE(order[1] == 1 || order[1] == 2);
    EXPECT_TRUE(order[2] == 0 || order[2] == 3);
}

TEST(Interconnect, BusUniformLatency)
{
    ClusterConfig cfg;
    cfg.bus = true;
    cfg.busLatency = 3;
    Interconnect ic(cfg);
    EXPECT_EQ(ic.latency(0, 0), 0u);
    EXPECT_EQ(ic.latency(0, 1), 3u);
    EXPECT_EQ(ic.latency(0, 3), 3u);   // uniform, not distance-scaled
    EXPECT_EQ(ic.distance(0, 3), 1u);  // every remote cluster is one hop
    EXPECT_EQ(ic.distance(2, 2), 0u);
    EXPECT_TRUE(ic.isBus());
}

TEST(Interconnect, HopLatencyScales)
{
    ClusterConfig cfg;
    cfg.hopLatency = 1;
    Interconnect ic(cfg);
    EXPECT_EQ(ic.latency(0, 2), 2u);
}

TEST(Interconnect, MatrixPropertiesHoldForEveryTopologyAndSize)
{
    // Structural properties every topology variant must satisfy at
    // every supported machine size: zero diagonal, symmetry, a
    // maxDistance that really is the matrix maximum, and adjacency
    // consistent with the distance matrix.
    for (const Topology topo :
         {Topology::LinearChain, Topology::Ring, Topology::Crossbar,
          Topology::Hierarchical, Topology::Bus}) {
        for (const unsigned n : {2u, 4u, 8u}) {
            ClusterConfig cfg;
            cfg.topology = topo;
            cfg.numClusters = n;
            const Interconnect ic(cfg);
            unsigned max_seen = 0;
            for (ClusterId a = 0; a < static_cast<int>(n); ++a) {
                EXPECT_EQ(ic.distance(a, a), 0u);
                EXPECT_EQ(ic.latency(a, a), 0u);
                for (ClusterId b = 0; b < static_cast<int>(n); ++b) {
                    EXPECT_EQ(ic.distance(a, b), ic.distance(b, a))
                        << topologyName(topo) << " n=" << n;
                    EXPECT_EQ(ic.latency(a, b), ic.latency(b, a));
                    EXPECT_EQ(ic.adjacent(a, b),
                              ic.distance(a, b) <= 1);
                    if (a != b) {
                        EXPECT_GE(ic.distance(a, b), 1u);
                        max_seen =
                            std::max(max_seen, ic.distance(a, b));
                    }
                }
            }
            EXPECT_EQ(ic.maxDistance(), max_seen)
                << topologyName(topo) << " n=" << n;
        }
    }
}

TEST(ReservationStation, CapacityAndPorts)
{
    ReservationStation rs(4, 2);
    OwnedTimedInst a = makeInst(1, Opcode::Add);
    OwnedTimedInst b = makeInst(2, Opcode::Add);
    OwnedTimedInst c = makeInst(3, Opcode::Add);

    EXPECT_TRUE(rs.tryInsert(&a, 10));
    EXPECT_TRUE(rs.tryInsert(&b, 10));
    EXPECT_FALSE(rs.tryInsert(&c, 10));   // out of write ports
    EXPECT_TRUE(rs.canInsert(11));
    EXPECT_TRUE(rs.tryInsert(&c, 11));    // new cycle, new ports
    EXPECT_EQ(rs.occupancy(), 3u);
}

TEST(ReservationStation, FullStopsInsertion)
{
    ReservationStation rs(2, 2);
    OwnedTimedInst a = makeInst(1, Opcode::Add);
    OwnedTimedInst b = makeInst(2, Opcode::Add);
    OwnedTimedInst c = makeInst(3, Opcode::Add);
    EXPECT_TRUE(rs.tryInsert(&a, 1));
    EXPECT_TRUE(rs.tryInsert(&b, 1));
    EXPECT_FALSE(rs.tryInsert(&c, 2));
    EXPECT_FALSE(rs.canInsert(2));
    rs.remove(&a);
    EXPECT_TRUE(rs.canInsert(2));
}

TEST(FuPool, SpecialPurposeCounts)
{
    FuPool pool;
    // Two simple integer units...
    FuPool::Slot alu0 = pool.tryReserve(FuKind::IntAlu, 0);
    ASSERT_TRUE(static_cast<bool>(alu0));
    alu0.commit(0, 1);
    FuPool::Slot alu1 = pool.tryReserve(FuKind::IntAlu, 0);
    ASSERT_TRUE(static_cast<bool>(alu1));
    alu1.commit(0, 1);
    EXPECT_FALSE(static_cast<bool>(pool.tryReserve(FuKind::IntAlu, 0)));
    // ...free again next cycle.
    EXPECT_TRUE(static_cast<bool>(pool.tryReserve(FuKind::IntAlu, 1)));
    // One complex unit with a long issue latency.
    FuPool::Slot cpx = pool.tryReserve(FuKind::IntComplex, 0);
    ASSERT_TRUE(static_cast<bool>(cpx));
    cpx.commit(0, 19);
    EXPECT_FALSE(static_cast<bool>(pool.tryReserve(FuKind::IntComplex, 18)));
    EXPECT_TRUE(static_cast<bool>(pool.tryReserve(FuKind::IntComplex, 19)));
}

TEST(FuPool, UncommittedSlotLeavesUnitFree)
{
    FuPool pool;
    {
        // Claim without commit: the dispatch loop backing out (the
        // instruction failed its ready check) must not book the unit.
        FuPool::Slot slot = pool.tryReserve(FuKind::IntComplex, 5);
        ASSERT_TRUE(static_cast<bool>(slot));
    }
    FuPool::Slot again = pool.tryReserve(FuKind::IntComplex, 5);
    EXPECT_TRUE(static_cast<bool>(again));
}

TEST(StationRouting, FuToStationMap)
{
    EXPECT_EQ(stationFor(FuKind::IntMem), StationKind::Mem);
    EXPECT_EQ(stationFor(FuKind::FpMem), StationKind::Mem);
    EXPECT_EQ(stationFor(FuKind::Branch), StationKind::Branch);
    EXPECT_EQ(stationFor(FuKind::IntComplex), StationKind::Complex);
    EXPECT_EQ(stationFor(FuKind::FpComplex), StationKind::Complex);
    EXPECT_EQ(stationFor(FuKind::IntAlu), StationKind::Simple0);
    EXPECT_EQ(stationFor(FuKind::FpBasic), StationKind::Simple0);
}

class ClusterTest : public ::testing::Test
{
  protected:
    ClusterConfig cfg_;
    Cluster cluster_{0, cfg_};

    std::vector<TimedInst *>
    dispatch(Cycle now, const TestHooks &hooks = {})
    {
        std::vector<TimedInst *> out;
        cluster_.dispatch(now, hooks, out);
        return out;
    }
};

TEST_F(ClusterTest, SimpleOpsSplitAcrossTwoStations)
{
    // Four ALU inserts in one cycle succeed (2 ports x 2 stations).
    std::vector<OwnedTimedInst> insts;
    for (int i = 0; i < 5; ++i)
        insts.push_back(makeInst(static_cast<InstSeqNum>(i), Opcode::Add));
    unsigned accepted = 0;
    for (auto &inst : insts)
        accepted += cluster_.issue(&inst, 7) ? 1 : 0;
    EXPECT_EQ(accepted, 4u);
}

TEST_F(ClusterTest, DispatchOldestFirstUpToWidth)
{
    std::vector<OwnedTimedInst> insts;
    for (int i = 0; i < 6; ++i)
        insts.push_back(makeInst(static_cast<InstSeqNum>(10 - i),
                                 Opcode::Add));
    Cycle cycle = 0;
    for (auto &inst : insts)
        cluster_.issue(&inst, cycle++);

    auto done = dispatch(100);
    // Width 4, but only 2 ALUs: ALU issue latency 1 means both ALUs
    // can start one op each -> 2 dispatches this cycle.
    ASSERT_EQ(done.size(), 2u);
    EXPECT_LT(done[0]->dyn.seq, done[1]->dyn.seq);
    EXPECT_EQ(done[0]->dyn.seq, 5u);   // oldest (10-5)
}

TEST_F(ClusterTest, DispatchHonorsReadiness)
{
    OwnedTimedInst a = makeInst(1, Opcode::Add);
    OwnedTimedInst b = makeInst(2, Opcode::Add);
    cluster_.issue(&a, 0);
    cluster_.issue(&b, 0);

    TestHooks hooks;
    hooks.readyFn = [](const TimedInst &inst, Cycle) {
        return inst.dyn.seq == 2;   // only b is ready
    };
    auto done = dispatch(1, hooks);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0]->dyn.seq, 2u);
    EXPECT_EQ(cluster_.occupancy(), 1u);
}

TEST_F(ClusterTest, MixedKindsDispatchInParallel)
{
    OwnedTimedInst alu = makeInst(1, Opcode::Add);
    OwnedTimedInst mem = makeInst(2, Opcode::Load);
    OwnedTimedInst br = makeInst(3, Opcode::Beq);
    OwnedTimedInst cpx = makeInst(4, Opcode::Mul);
    OwnedTimedInst extra = makeInst(5, Opcode::Sub);
    for (TimedInst *inst : {&alu, &mem, &br, &cpx, &extra})
        ASSERT_TRUE(cluster_.issue(inst, 0));

    auto done = dispatch(1);
    // Width caps at 4 even though 5 could structurally go.
    EXPECT_EQ(done.size(), 4u);
}

TEST_F(ClusterTest, ComplexIssueLatencyBlocksBackToBack)
{
    OwnedTimedInst d1 = makeInst(1, Opcode::Div);
    OwnedTimedInst d2 = makeInst(2, Opcode::Div);
    cluster_.issue(&d1, 0);
    cluster_.issue(&d2, 0);
    EXPECT_EQ(dispatch(1).size(), 1u);
    // The single divider is busy for issueLatency (19) cycles.
    EXPECT_EQ(dispatch(2).size(), 0u);
    EXPECT_EQ(dispatch(19).size(), 0u);
    EXPECT_EQ(dispatch(20).size(), 1u);
}

TEST(TimedInst, CompletionPushFillsWaiters)
{
    OwnedTimedInst producer = makeInst(1, Opcode::Add);
    producer.cluster = 2;
    OwnedTimedInst consumer = makeInst(2, Opcode::Add);
    consumer.ops[0].valid = true;
    consumer.ops[0].fromRF = false;
    consumer.ops[0].producerSeq = 1;
    producer.waiters.push_back(&consumer);

    producer.completeAt = 55;
    producer.pushCompletion();
    EXPECT_TRUE(consumer.ops[0].producerComplete);
    EXPECT_EQ(consumer.ops[0].rawReady, 55u);
    EXPECT_EQ(consumer.ops[0].producerCluster, 2);
    EXPECT_TRUE(producer.waiters.empty());
}

TEST_F(ClusterTest, DispatchOrderOldestReadyFirstAcrossStations)
{
    // Instructions spread across every station class, issued in
    // scrambled seq order (as issue-time steering can produce), with
    // one old instruction not yet operand-ready. Selection must visit
    // ready instructions in ascending seq regardless of station.
    OwnedTimedInst br = makeInst(7, Opcode::Beq);
    OwnedTimedInst mem = makeInst(3, Opcode::Load);
    OwnedTimedInst alu = makeInst(9, Opcode::Add);
    OwnedTimedInst cpx = makeInst(5, Opcode::Mul);
    OwnedTimedInst stale = makeInst(1, Opcode::Sub);
    stale.readyAt = 100;   // oldest, but operands arrive much later

    Cycle cycle = 0;
    for (TimedInst *inst : {&br, &mem, &alu, &cpx, &stale})
        ASSERT_TRUE(cluster_.issue(inst, cycle++));

    auto done = dispatch(10);
    // Width 4: the four ready ones go, oldest first; `stale` stays.
    ASSERT_EQ(done.size(), 4u);
    EXPECT_EQ(done[0]->dyn.seq, 3u);
    EXPECT_EQ(done[1]->dyn.seq, 5u);
    EXPECT_EQ(done[2]->dyn.seq, 7u);
    EXPECT_EQ(done[3]->dyn.seq, 9u);
    EXPECT_EQ(cluster_.occupancy(), 1u);

    // Once its operands arrive, the old instruction dispatches.
    EXPECT_EQ(dispatch(99).size(), 0u);
    auto late = dispatch(100);
    ASSERT_EQ(late.size(), 1u);
    EXPECT_EQ(late[0]->dyn.seq, 1u);
    EXPECT_EQ(cluster_.occupancy(), 0u);
}

TEST_F(ClusterTest, WakeMovesWaiterOntoSchedulableList)
{
    // A consumer with an outstanding producer is parked: the dispatch
    // loop must never select it, however many cycles pass.
    OwnedTimedInst consumer = makeInst(4, Opcode::Add);
    consumer.pendingProducers = 1;
    consumer.readyAt = neverCycle;
    ASSERT_TRUE(cluster_.issue(&consumer, 0));
    EXPECT_EQ(dispatch(50).size(), 0u);
    EXPECT_EQ(cluster_.occupancy(), 1u);

    // Producer completes: the core refreshes readyAt and wakes it.
    consumer.pendingProducers = 0;
    consumer.readyAt = 60;
    cluster_.wake(&consumer);
    EXPECT_EQ(dispatch(59).size(), 0u);   // forwarding not done yet
    auto done = dispatch(60);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0]->dyn.seq, 4u);
}

TEST(SchedList, InsertByAgeKeepsSeqOrder)
{
    SchedList list;
    OwnedTimedInst a = makeInst(10, Opcode::Add);
    OwnedTimedInst b = makeInst(20, Opcode::Add);
    OwnedTimedInst c = makeInst(15, Opcode::Add);
    OwnedTimedInst d = makeInst(5, Opcode::Add);
    for (TimedInst *inst : {&a, &b, &c, &d})
        list.insertByAge(inst);

    std::vector<InstSeqNum> seqs;
    for (TimedInst *it = list.head; it != nullptr; it = it->schedNext)
        seqs.push_back(it->dyn.seq);
    EXPECT_EQ(seqs, (std::vector<InstSeqNum>{5, 10, 15, 20}));

    list.unlink(&c);                      // middle
    list.unlink(&d);                      // head
    list.unlink(&b);                      // tail
    EXPECT_EQ(list.head, &a);
    EXPECT_EQ(list.tail, &a);
    list.unlink(&a);
    EXPECT_TRUE(list.empty());
}

TEST(ChainProfile, Membership)
{
    ChainProfile p;
    EXPECT_FALSE(p.isMember());
    p.role = ChainRole::Leader;
    EXPECT_FALSE(p.isMember());   // no cluster yet
    p.chainCluster = 2;
    EXPECT_TRUE(p.isMember());
}

} // namespace
} // namespace ctcp
