/**
 * @file
 * Unit tests for the execution cluster: reservation stations, FU pool,
 * dispatch selection, and the interconnect distance model.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.hh"
#include "cluster/interconnect.hh"

namespace ctcp {
namespace {

TimedInst
makeInst(InstSeqNum seq, Opcode op)
{
    TimedInst t;
    t.dyn.seq = seq;
    t.dyn.op = op;
    return t;
}

TEST(Interconnect, LinearDistances)
{
    ClusterConfig cfg;   // 4 clusters, hop 2, linear
    Interconnect ic(cfg);
    EXPECT_EQ(ic.distance(0, 0), 0u);
    EXPECT_EQ(ic.distance(0, 1), 1u);
    EXPECT_EQ(ic.distance(0, 3), 3u);
    EXPECT_EQ(ic.distance(3, 0), 3u);
    EXPECT_EQ(ic.latency(0, 3), 6u);   // 3 hops x 2 cycles
    EXPECT_TRUE(ic.adjacent(1, 2));
    EXPECT_FALSE(ic.adjacent(0, 2));
}

TEST(Interconnect, MeshClosesTheRing)
{
    ClusterConfig cfg;
    cfg.mesh = true;
    Interconnect ic(cfg);
    EXPECT_EQ(ic.distance(0, 3), 1u);   // end clusters adjacent
    EXPECT_EQ(ic.distance(0, 2), 2u);
    EXPECT_EQ(ic.latency(0, 3), 2u);
    // A mesh of 4 never needs more than 2 hops.
    for (ClusterId a = 0; a < 4; ++a)
        for (ClusterId b = 0; b < 4; ++b)
            EXPECT_LE(ic.distance(a, b), 2u);
}

TEST(Interconnect, CentralityPrefersMiddle)
{
    ClusterConfig cfg;
    Interconnect ic(cfg);
    auto order = ic.byCentrality();
    ASSERT_EQ(order.size(), 4u);
    // The two middle clusters come first, the ends last.
    EXPECT_TRUE(order[0] == 1 || order[0] == 2);
    EXPECT_TRUE(order[1] == 1 || order[1] == 2);
    EXPECT_TRUE(order[2] == 0 || order[2] == 3);
}

TEST(Interconnect, BusUniformLatency)
{
    ClusterConfig cfg;
    cfg.bus = true;
    cfg.busLatency = 3;
    Interconnect ic(cfg);
    EXPECT_EQ(ic.latency(0, 0), 0u);
    EXPECT_EQ(ic.latency(0, 1), 3u);
    EXPECT_EQ(ic.latency(0, 3), 3u);   // uniform, not distance-scaled
    EXPECT_EQ(ic.distance(0, 3), 1u);  // every remote cluster is one hop
    EXPECT_EQ(ic.distance(2, 2), 0u);
    EXPECT_TRUE(ic.isBus());
}

TEST(Interconnect, HopLatencyScales)
{
    ClusterConfig cfg;
    cfg.hopLatency = 1;
    Interconnect ic(cfg);
    EXPECT_EQ(ic.latency(0, 2), 2u);
}

TEST(ReservationStation, CapacityAndPorts)
{
    ReservationStation rs(4, 2);
    TimedInst a = makeInst(1, Opcode::Add);
    TimedInst b = makeInst(2, Opcode::Add);
    TimedInst c = makeInst(3, Opcode::Add);

    EXPECT_TRUE(rs.tryInsert(&a, 10));
    EXPECT_TRUE(rs.tryInsert(&b, 10));
    EXPECT_FALSE(rs.tryInsert(&c, 10));   // out of write ports
    EXPECT_TRUE(rs.canInsert(11));
    EXPECT_TRUE(rs.tryInsert(&c, 11));    // new cycle, new ports
    EXPECT_EQ(rs.occupancy(), 3u);
}

TEST(ReservationStation, FullStopsInsertion)
{
    ReservationStation rs(2, 2);
    TimedInst a = makeInst(1, Opcode::Add);
    TimedInst b = makeInst(2, Opcode::Add);
    TimedInst c = makeInst(3, Opcode::Add);
    EXPECT_TRUE(rs.tryInsert(&a, 1));
    EXPECT_TRUE(rs.tryInsert(&b, 1));
    EXPECT_FALSE(rs.tryInsert(&c, 2));
    EXPECT_FALSE(rs.canInsert(2));
    rs.remove(&a);
    EXPECT_TRUE(rs.canInsert(2));
}

TEST(FuPool, SpecialPurposeCounts)
{
    FuPool pool;
    // Two simple integer units...
    EXPECT_TRUE(pool.available(FuKind::IntAlu, 0));
    pool.reserve(FuKind::IntAlu, 0, 1);
    EXPECT_TRUE(pool.available(FuKind::IntAlu, 0));
    pool.reserve(FuKind::IntAlu, 0, 1);
    EXPECT_FALSE(pool.available(FuKind::IntAlu, 0));
    // ...free again next cycle.
    EXPECT_TRUE(pool.available(FuKind::IntAlu, 1));
    // One complex unit with a long issue latency.
    pool.reserve(FuKind::IntComplex, 0, 19);
    EXPECT_FALSE(pool.available(FuKind::IntComplex, 18));
    EXPECT_TRUE(pool.available(FuKind::IntComplex, 19));
}

TEST(StationRouting, FuToStationMap)
{
    EXPECT_EQ(stationFor(FuKind::IntMem), StationKind::Mem);
    EXPECT_EQ(stationFor(FuKind::FpMem), StationKind::Mem);
    EXPECT_EQ(stationFor(FuKind::Branch), StationKind::Branch);
    EXPECT_EQ(stationFor(FuKind::IntComplex), StationKind::Complex);
    EXPECT_EQ(stationFor(FuKind::FpComplex), StationKind::Complex);
    EXPECT_EQ(stationFor(FuKind::IntAlu), StationKind::Simple0);
    EXPECT_EQ(stationFor(FuKind::FpBasic), StationKind::Simple0);
}

class ClusterTest : public ::testing::Test
{
  protected:
    ClusterConfig cfg_;
    Cluster cluster_{0, cfg_};

    DispatchHooks
    alwaysReady()
    {
        DispatchHooks hooks;
        hooks.ready = [](const TimedInst &, Cycle) { return true; };
        hooks.execute = [](TimedInst &, Cycle now) { return now + 1; };
        return hooks;
    }
};

TEST_F(ClusterTest, SimpleOpsSplitAcrossTwoStations)
{
    // Four ALU inserts in one cycle succeed (2 ports x 2 stations).
    std::vector<TimedInst> insts;
    for (int i = 0; i < 5; ++i)
        insts.push_back(makeInst(static_cast<InstSeqNum>(i), Opcode::Add));
    unsigned accepted = 0;
    for (auto &inst : insts)
        accepted += cluster_.issue(&inst, 7) ? 1 : 0;
    EXPECT_EQ(accepted, 4u);
}

TEST_F(ClusterTest, DispatchOldestFirstUpToWidth)
{
    std::vector<TimedInst> insts;
    for (int i = 0; i < 6; ++i)
        insts.push_back(makeInst(static_cast<InstSeqNum>(10 - i),
                                 Opcode::Add));
    Cycle cycle = 0;
    for (auto &inst : insts)
        cluster_.issue(&inst, cycle++);

    auto done = cluster_.dispatch(100, alwaysReady());
    // Width 4, but only 2 ALUs: ALU issue latency 1 means both ALUs
    // can start one op each -> 2 dispatches this cycle.
    ASSERT_EQ(done.size(), 2u);
    EXPECT_LT(done[0]->dyn.seq, done[1]->dyn.seq);
    EXPECT_EQ(done[0]->dyn.seq, 5u);   // oldest (10-5)
}

TEST_F(ClusterTest, DispatchHonorsReadiness)
{
    TimedInst a = makeInst(1, Opcode::Add);
    TimedInst b = makeInst(2, Opcode::Add);
    cluster_.issue(&a, 0);
    cluster_.issue(&b, 0);

    DispatchHooks hooks;
    hooks.ready = [&](const TimedInst &inst, Cycle) {
        return inst.dyn.seq == 2;   // only b is ready
    };
    hooks.execute = [](TimedInst &, Cycle now) { return now + 1; };
    auto done = cluster_.dispatch(1, hooks);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0]->dyn.seq, 2u);
    EXPECT_EQ(cluster_.occupancy(), 1u);
}

TEST_F(ClusterTest, MixedKindsDispatchInParallel)
{
    TimedInst alu = makeInst(1, Opcode::Add);
    TimedInst mem = makeInst(2, Opcode::Load);
    TimedInst br = makeInst(3, Opcode::Beq);
    TimedInst cpx = makeInst(4, Opcode::Mul);
    TimedInst extra = makeInst(5, Opcode::Sub);
    for (TimedInst *inst : {&alu, &mem, &br, &cpx, &extra})
        ASSERT_TRUE(cluster_.issue(inst, 0));

    auto done = cluster_.dispatch(1, alwaysReady());
    // Width caps at 4 even though 5 could structurally go.
    EXPECT_EQ(done.size(), 4u);
}

TEST_F(ClusterTest, ComplexIssueLatencyBlocksBackToBack)
{
    TimedInst d1 = makeInst(1, Opcode::Div);
    TimedInst d2 = makeInst(2, Opcode::Div);
    cluster_.issue(&d1, 0);
    cluster_.issue(&d2, 0);
    EXPECT_EQ(cluster_.dispatch(1, alwaysReady()).size(), 1u);
    // The single divider is busy for issueLatency (19) cycles.
    EXPECT_EQ(cluster_.dispatch(2, alwaysReady()).size(), 0u);
    EXPECT_EQ(cluster_.dispatch(19, alwaysReady()).size(), 0u);
    EXPECT_EQ(cluster_.dispatch(20, alwaysReady()).size(), 1u);
}

TEST(TimedInst, CompletionPushFillsWaiters)
{
    TimedInst producer = makeInst(1, Opcode::Add);
    producer.cluster = 2;
    TimedInst consumer = makeInst(2, Opcode::Add);
    consumer.ops[0].valid = true;
    consumer.ops[0].fromRF = false;
    consumer.ops[0].producerSeq = 1;
    producer.waiters.push_back(&consumer);

    producer.completeAt = 55;
    producer.pushCompletion();
    EXPECT_TRUE(consumer.ops[0].producerComplete);
    EXPECT_EQ(consumer.ops[0].rawReady, 55u);
    EXPECT_EQ(consumer.ops[0].producerCluster, 2);
    EXPECT_TRUE(producer.waiters.empty());
}

TEST(ChainProfile, Membership)
{
    ChainProfile p;
    EXPECT_FALSE(p.isMember());
    p.role = ChainRole::Leader;
    EXPECT_FALSE(p.isMember());   // no cluster yet
    p.chainCluster = 2;
    EXPECT_TRUE(p.isMember());
}

} // namespace
} // namespace ctcp
