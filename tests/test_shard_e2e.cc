/**
 * @file
 * End-to-end sharded campaigns through the real binaries:
 *
 *  - `ctcpctl submit --shard` across two live daemons produces a
 *    report byte-identical to `ctcpsim --campaign`;
 *  - SIGKILL one daemon mid-campaign: the coordinator circuit-breaks
 *    it, reassigns its slots, and still exits 0 with identical bytes;
 *  - ctcp_merge rebuilds the same report offline from the daemons'
 *    own journals, in either file order — the post-mortem recovery
 *    path when the coordinator itself dies;
 *  - a client that stalls mid-request cannot wedge graceful shutdown
 *    once --io-deadline bounds per-connection reads.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>

#include "e2e_util.hh"

namespace {

using namespace e2e;

const char *const kMatrix =
    "bench=gzip,adpcm_enc;strategy=base,fdrt;budget=60000";

std::string
shardSubmit(const std::string &dir, const Daemon &a, const Daemon &b,
            const std::string &spec, const std::string &extra,
            int &status)
{
    const std::string spec_path = writeSpec(dir, spec);
    const std::string out = dir + "/sharded.json";
    const CommandResult result =
        run(std::string(CTCP_CTCPCTL_PATH) + " submit " + spec_path +
            " --shard " + a.socketPath() + "," + b.socketPath() +
            " --out " + out + " " + extra);
    status = result.status;
    return out;
}

TEST(ShardE2E, ShardedSubmitMatchesBatchByteForByte)
{
    Daemon a("shard_a"), b("shard_b");
    const std::string dir = a.dir();

    int status = -1;
    const std::string out = shardSubmit(
        dir, a, b, kMatrix, "--journal " + dir + "/merged.jsonl",
        status);
    ASSERT_EQ(status, 0);
    EXPECT_EQ(slurp(out), batchReport(dir, kMatrix));

    // Offline recovery: the daemons' own journals merge (in either
    // order) into the identical report via ctcp_merge.
    const std::string ja = a.statePath() + "/r0001.journal.jsonl";
    const std::string jb = b.statePath() + "/r0001.journal.jsonl";
    ASSERT_TRUE(std::filesystem::exists(ja));
    ASSERT_TRUE(std::filesystem::exists(jb));
    for (const std::string &inputs : {ja + " " + jb, jb + " " + ja}) {
        const std::string merged_out = dir + "/merge_report.json";
        const CommandResult merged = run(
            std::string(CTCP_MERGE_PATH) + " --campaign '" + kMatrix +
            "' --merged " + dir + "/offline.jsonl --out " +
            merged_out + " " + inputs);
        EXPECT_EQ(merged.status, 0);
        EXPECT_EQ(slurp(merged_out), batchReport(dir, kMatrix));
    }
}

TEST(ShardE2E, KilledShardFailsOverWithIdenticalBytes)
{
    Daemon a("chaos_a"), b("chaos_b");
    const std::string dir = a.dir();
    // Budgets big enough that the campaign is still streaming when
    // the SIGKILL lands.
    const std::string matrix =
        "bench=gzip,adpcm_enc;strategy=base,fdrt;budget=400000";

    int status = -1;
    std::string out;
    std::thread submit([&] {
        out = shardSubmit(dir, a, b, matrix, "", status);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(800));
    b.kill(); // crash one shard mid-stream
    submit.join();

    // Failover is invisible in the output: exit 0, identical bytes.
    EXPECT_EQ(status, 0);
    EXPECT_EQ(slurp(out), batchReport(dir, matrix));
}

TEST(ShardE2E, TraceIdIsGreppableAcrossBothDaemonLogs)
{
    // Daemon dirs are predictable from the tag, so the log paths can
    // be chosen before the daemons exist.
    const std::string log_a =
        ::testing::TempDir() + "ctcp_e2e_trace_a/d.log";
    const std::string log_b =
        ::testing::TempDir() + "ctcp_e2e_trace_b/d.log";
    Daemon a("trace_a", 2, {"--log-file", log_a, "--log-level", "info"});
    Daemon b("trace_b", 2, {"--log-file", log_b, "--log-level", "info"});
    const std::string dir = a.dir();

    const std::string trace = "feedfacecafe0042";
    int status = -1;
    const std::string out =
        shardSubmit(dir, a, b, kMatrix, "--trace-id " + trace, status);
    ASSERT_EQ(status, 0);

    // Logging is a side channel: the report stays byte-identical.
    EXPECT_EQ(slurp(out), batchReport(dir, kMatrix));

    // One grep-able correlation id ties the whole fleet together: the
    // coordinator stamped every exchange, so both daemons logged it.
    for (const std::string &log : {log_a, log_b}) {
        const std::string text = slurp(log);
        ASSERT_FALSE(text.empty()) << log;
        EXPECT_NE(text.find("\"trace\":\"" + trace + "\""),
                  std::string::npos)
            << log << ":\n"
            << text;
    }
}

TEST(ShardE2E, StalledClientCannotWedgeGracefulShutdown)
{
    Daemon daemon("stall", 2, {"--io-deadline", "1"});

    // Open a connection, send half a request line, and go silent.
    std::string error;
    const int fd =
        ctcp::service::connectUnix(daemon.socketPath(), error);
    ASSERT_GE(fd, 0) << error;
    ASSERT_TRUE(ctcp::service::writeAll(fd, "GET /v1/pi"));

    // Graceful shutdown waits for active connections; the per-
    // connection read deadline must cut the stalled one loose long
    // before the shutdown watchdog would.
    const auto start = std::chrono::steady_clock::now();
    EXPECT_EQ(daemon.terminate(), 0);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    EXPECT_LT(elapsed, 10.0);
    ::close(fd);
}

} // namespace
