/**
 * @file
 * Statistics package tests: Histogram edge cases (overflow bucket,
 * zero-width geometry rejection), StatGroup rendering — including a
 * group holding a histogram that never received a sample — and the
 * IntervalRecorder time-series maths and serialization.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>

#include "stats/interval.hh"
#include "stats/stats.hh"

namespace ctcp {
namespace {

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

TEST(Histogram, BucketsValuesByWidth)
{
    Histogram h(4, 10);
    h.sample(0);
    h.sample(9);
    h.sample(10);
    h.sample(39);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.samples(), 4u);
}

TEST(Histogram, OutOfRangeSamplesLandInOverflowBucket)
{
    Histogram h(4, 10);
    h.sample(40);              // first value past the last bucket
    h.sample(41);
    h.sample(1'000'000);       // far past the last bucket
    h.sample(55, 5);           // weighted overflow
    EXPECT_EQ(h.overflow(), 8u);
    EXPECT_EQ(h.samples(), 8u);
    for (std::size_t i = 0; i < h.buckets(); ++i)
        EXPECT_EQ(h.bucketCount(i), 0u) << "bucket " << i;
    // Overflow samples still contribute their true value to the mean.
    EXPECT_DOUBLE_EQ(h.mean(), (40.0 + 41.0 + 1'000'000.0 + 55.0 * 5) / 8.0);
}

TEST(Histogram, BoundaryValueGoesToOverflowNotLastBucket)
{
    Histogram h(2, 5);         // regular buckets cover [0,5) and [5,10)
    h.sample(9);
    h.sample(10);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.overflow(), 1u);
}

TEST(HistogramDeathTest, RejectsZeroWidthBuckets)
{
    EXPECT_DEATH(Histogram(4, 0), "positive geometry");
}

TEST(HistogramDeathTest, RejectsZeroBucketCount)
{
    EXPECT_DEATH(Histogram(0, 10), "positive geometry");
}

TEST(Histogram, ResetClearsEverything)
{
    Histogram h(2, 10);
    h.sample(5);
    h.sample(100);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

// ---------------------------------------------------------------------
// StatGroup
// ---------------------------------------------------------------------

TEST(StatGroup, DumpsWithGroupPrefix)
{
    Counter hits;
    Counter misses;
    ++hits;
    ++hits;
    ++misses;
    StatGroup group("tc");
    group.addCounter("hits", hits);
    group.addCounter("misses", misses);
    group.addFormula("hit_rate", [&] {
        return ratio(hits.value(), hits.value() + misses.value());
    });

    const std::string text = group.render();
    EXPECT_NE(text.find("tc.hits"), std::string::npos);
    EXPECT_NE(text.find("tc.misses"), std::string::npos);
    EXPECT_NE(text.find("tc.hit_rate"), std::string::npos);
    EXPECT_NE(text.find("2"), std::string::npos);
}

TEST(StatGroup, FormulasEvaluateAtDumpTime)
{
    Counter c;
    StatGroup group("g");
    group.addFormula("doubled", [&] { return 2.0 * c.value(); });
    c += 21;
    StatDump dump;
    group.dump(dump);
    EXPECT_NE(dump.render().find("42"), std::string::npos);
}

TEST(StatGroup, RendersEmptyHistogramSafely)
{
    // A histogram that never sampled anything must render (as zero
    // samples / zero mean / zero overflow) rather than divide by zero.
    Histogram empty(8, 4);
    StatGroup group("fwd");
    group.addHistogram("distance", empty);
    const std::string text = group.render();
    EXPECT_NE(text.find("fwd.distance.samples"), std::string::npos);
    EXPECT_NE(text.find("fwd.distance.mean"), std::string::npos);
    EXPECT_NE(text.find("fwd.distance.overflow"), std::string::npos);
    EXPECT_EQ(text.find("nan"), std::string::npos);
    EXPECT_EQ(text.find("inf"), std::string::npos);
}

TEST(StatGroup, MixedGroupWithPopulatedHistogram)
{
    Counter forwards;
    forwards += 3;
    Histogram distance(4, 1);
    distance.sample(1);
    distance.sample(1);
    distance.sample(2);
    StatGroup group("net");
    group.addCounter("forwards", forwards);
    group.addHistogram("hops", distance);
    StatDump dump;
    group.dump(dump);
    const std::string text = dump.render();
    EXPECT_NE(text.find("net.forwards"), std::string::npos);
    EXPECT_NE(text.find("net.hops.samples"), std::string::npos);
}

// ---------------------------------------------------------------------
// IntervalRecorder
// ---------------------------------------------------------------------

TEST(IntervalRecorderDeathTest, RejectsZeroInterval)
{
    EXPECT_DEATH(IntervalRecorder(0), "positive interval");
}

TEST(IntervalRecorder, ParseIntervalCyclesAcceptsPositiveCounts)
{
    EXPECT_EQ(parseIntervalCycles("1"), 1u);
    EXPECT_EQ(parseIntervalCycles("10000"), 10000u);
    EXPECT_EQ(parseIntervalCycles("1000000000000"),
              1'000'000'000'000u);
}

TEST(IntervalRecorder, ParseIntervalCyclesRejectsBadInput)
{
    // The --interval contract: zero, negatives, junk, trailing junk,
    // and absurd periods all fail with a usable message.
    EXPECT_THROW(parseIntervalCycles("0"), std::invalid_argument);
    EXPECT_THROW(parseIntervalCycles("-5"), std::invalid_argument);
    EXPECT_THROW(parseIntervalCycles(""), std::invalid_argument);
    EXPECT_THROW(parseIntervalCycles("cycles"), std::invalid_argument);
    EXPECT_THROW(parseIntervalCycles("100x"), std::invalid_argument);
    EXPECT_THROW(parseIntervalCycles("10.5"), std::invalid_argument);
    EXPECT_THROW(parseIntervalCycles("1000000000001"),
                 std::invalid_argument);
    try {
        parseIntervalCycles("-5");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("positive cycle count"),
                  std::string::npos);
    }
}

TEST(IntervalRecorder, TrailingPartialIntervalIsFlushed)
{
    // A run whose length is not a multiple of the period still records
    // its tail: the end-of-run sample() lands one final partial row.
    double retired = 0.0;
    IntervalRecorder rec(100);
    rec.addRate("ipc", [&] { return retired; });
    retired = 120.0;
    rec.sample(100);
    retired = 150.0;
    rec.sample(230);          // end of run, 30 cycles into interval 3
    const std::string csv = rec.toCsv();
    EXPECT_EQ(rec.rows(), 2u);
    EXPECT_NE(csv.find("\n230,"), std::string::npos) << csv;
}

TEST(IntervalRecorder, GaugeRateAndRatioMaths)
{
    double instructions = 0.0;
    double hits = 0.0;
    double lookups = 0.0;
    double occupancy = 0.0;
    IntervalRecorder rec(100);
    rec.addRate("ipc", [&] { return instructions; });
    rec.addRatio("hit_rate", [&] { return hits; }, [&] { return lookups; });
    rec.addGauge("occupancy", [&] { return occupancy; });

    instructions = 150;
    hits = 30;
    lookups = 40;
    occupancy = 7;
    rec.sample(100);

    instructions = 250;   // +100 over 100 cycles -> rate 1.0
    hits = 30;            // flat ratio -> 0
    lookups = 40;
    occupancy = 3;
    rec.sample(200);

    ASSERT_EQ(rec.rows(), 2u);
    const std::string csv = rec.toCsv();
    EXPECT_EQ(csv.rfind("cycle,ipc,hit_rate,occupancy\n", 0), 0u);
    EXPECT_NE(csv.find("\n100,1.500000,0.750000,7.000000\n"),
              std::string::npos);
    EXPECT_NE(csv.find("\n200,1.000000,0.000000,3.000000\n"),
              std::string::npos);
}

TEST(IntervalRecorder, DueEveryNCycles)
{
    IntervalRecorder rec(250);
    EXPECT_FALSE(rec.due(1));
    EXPECT_FALSE(rec.due(249));
    EXPECT_TRUE(rec.due(250));
    EXPECT_TRUE(rec.due(500));
    EXPECT_FALSE(rec.due(501));
}

TEST(IntervalRecorder, TrailingSampleNeverDoubleCounts)
{
    // End-of-run flushing re-samples the final cycle; when the run
    // length is an exact multiple of the interval that cycle was
    // already recorded and the duplicate must be dropped.
    double v = 0.0;
    IntervalRecorder rec(10);
    rec.addGauge("v", [&] { return v; });
    v = 1;
    rec.sample(10);
    v = 2;
    rec.sample(20);
    rec.sample(20);   // duplicate trailing sample
    EXPECT_EQ(rec.rows(), 2u);
    rec.sample(23);   // genuine trailing partial interval
    EXPECT_EQ(rec.rows(), 3u);
}

TEST(IntervalRecorder, JsonShape)
{
    double v = 0.0;
    IntervalRecorder rec(50);
    rec.addGauge("v", [&] { return v; });
    v = 4;
    rec.sample(50);
    const std::string json = rec.toJson();
    EXPECT_NE(json.find("\"interval\": 50"), std::string::npos);
    EXPECT_NE(json.find("\"columns\": [\"cycle\", \"v\"]"),
              std::string::npos);
    EXPECT_NE(json.find("[50, 4.000000]"), std::string::npos);
}

TEST(IntervalRecorder, WriteFileRejectsUnwritablePath)
{
    IntervalRecorder rec(10);
    rec.addGauge("v", [] { return 0.0; });
    rec.sample(10);
    EXPECT_THROW(rec.writeFile("/no-such-dir-ctcp/out.csv"),
                 std::runtime_error);
}

} // namespace
} // namespace ctcp
