/**
 * @file
 * Simulator-level tests: pipeline timing on hand-built microprograms,
 * forwarding-latency semantics, ablation knobs, configuration
 * validation, and basic invariants of a full run.
 */

#include <gtest/gtest.h>

#include "common/sim_error.hh"
#include "config/presets.hh"
#include "core/simulator.hh"
#include "prog/builder.hh"

namespace ctcp {
namespace {

/** A tiny loop program touching ALU, memory and branches. */
Program
loopProgram(std::int64_t trips)
{
    ProgramBuilder b("microloop");
    b.data(0x1000, {1, 2, 3, 4, 5, 6, 7, 8});
    b.movi(intReg(1), trips);
    b.movi(intReg(2), 0x1000);
    b.movi(intReg(3), 0);
    b.label("top");
    b.andi(intReg(4), intReg(1), 7);
    b.slli(intReg(4), intReg(4), 3);
    b.add(intReg(4), intReg(4), intReg(2));
    b.load(intReg(5), intReg(4), 0);
    b.add(intReg(3), intReg(3), intReg(5));
    b.store(intReg(3), intReg(2), 64);
    b.addi(intReg(1), intReg(1), -1);
    b.bne(intReg(1), zeroReg, "top");
    b.halt();
    return b.build();
}

SimConfig
quickConfig()
{
    SimConfig cfg = baseConfig();
    cfg.instructionLimit = 0;   // run to Halt
    return cfg;
}

/** A loop with loop-carried (inter-trace) chains for FDRT testing. */
Program
workloadLikeLoop()
{
    ProgramBuilder b("chainy");
    b.data(0x1000, std::vector<std::int64_t>(64, 3));
    b.movi(intReg(1), 1'000'000);
    b.movi(intReg(2), 0x1000);
    b.movi(intReg(3), 1);
    b.movi(intReg(6), 0);
    b.label("top");
    // Loop-carried accumulator chain (inter-trace critical).
    b.andi(intReg(4), intReg(3), 63);
    b.slli(intReg(4), intReg(4), 3);
    b.add(intReg(4), intReg(4), intReg(2));
    b.load(intReg(5), intReg(4), 0);
    b.add(intReg(3), intReg(3), intReg(5));
    b.xor_(intReg(6), intReg(6), intReg(3));
    b.addi(intReg(7), intReg(6), 5);
    b.add(intReg(8), intReg(7), intReg(3));
    b.store(intReg(8), intReg(4), 512);
    b.addi(intReg(1), intReg(1), -1);
    b.bne(intReg(1), zeroReg, "top");
    b.halt();
    return b.build();
}

TEST(Simulator, RunsToHaltAndRetiresEverything)
{
    Program p = loopProgram(100);
    CtcpSimulator sim(quickConfig(), p);
    SimResult r = sim.run();
    // 3 setup + 100 * 8 loop body + halt.
    EXPECT_EQ(r.instructions, 804u);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_EQ(r.strategy, std::string("base"));
}

TEST(Simulator, InstructionLimitStopsEarly)
{
    Program p = loopProgram(100000);
    SimConfig cfg = quickConfig();
    cfg.instructionLimit = 5000;
    CtcpSimulator sim(cfg, p);
    SimResult r = sim.run();
    EXPECT_GE(r.instructions, 5000u);
    EXPECT_LT(r.instructions, 5000u + cfg.core.retireWidth);
}

TEST(Simulator, DeterministicAcrossRuns)
{
    Program p = loopProgram(2000);
    SimResult a = CtcpSimulator(quickConfig(), p).run();
    SimResult b = CtcpSimulator(quickConfig(), p).run();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
}

TEST(Simulator, SerialChainBoundByDependences)
{
    // A long serial ALU chain cannot exceed IPC 1 by much, and a
    // parallel version of the same work must be clearly faster.
    ProgramBuilder serial("serial");
    serial.movi(intReg(1), 50000);
    serial.label("top");
    for (int i = 0; i < 8; ++i)
        serial.addi(intReg(2), intReg(2), 1);   // dependent chain
    serial.addi(intReg(1), intReg(1), -1);
    serial.bne(intReg(1), zeroReg, "top");
    serial.halt();
    Program sp = serial.build();

    ProgramBuilder parallel("parallel");
    parallel.movi(intReg(1), 50000);
    parallel.label("top");
    for (int i = 0; i < 8; ++i)
        parallel.addi(static_cast<RegId>(2 + i),
                      static_cast<RegId>(2 + i), 1);   // independent
    parallel.addi(intReg(1), intReg(1), -1);
    parallel.bne(intReg(1), zeroReg, "top");
    parallel.halt();
    Program pp = parallel.build();

    SimConfig cfg = quickConfig();
    cfg.instructionLimit = 100000;
    const SimResult rs = CtcpSimulator(cfg, sp).run();
    const SimResult rp = CtcpSimulator(cfg, pp).run();
    EXPECT_LT(rs.ipc(), 1.3);
    EXPECT_GT(rp.ipc(), rs.ipc() * 1.5);
}

TEST(Simulator, ZeroForwardLatencyNeverSlower)
{
    Program p = loopProgram(20000);
    SimConfig cfg = quickConfig();
    const SimResult base = CtcpSimulator(cfg, p).run();
    cfg.ablation.zeroAllForwardLatency = true;
    const SimResult nofwd = CtcpSimulator(cfg, p).run();
    EXPECT_LE(nofwd.cycles, base.cycles);
}

TEST(Simulator, CriticalAblationBetweenBaseAndFull)
{
    Program p = loopProgram(20000);
    SimConfig cfg = quickConfig();
    const SimResult base = CtcpSimulator(cfg, p).run();
    SimConfig crit = cfg;
    crit.ablation.zeroCriticalForwardLatency = true;
    const SimResult nocrit = CtcpSimulator(crit, p).run();
    SimConfig all = cfg;
    all.ablation.zeroAllForwardLatency = true;
    const SimResult noall = CtcpSimulator(all, p).run();
    EXPECT_LE(nocrit.cycles, base.cycles);
    EXPECT_LE(noall.cycles, nocrit.cycles);
}

TEST(Simulator, IntraPlusInterCoverAll)
{
    // Zeroing intra-trace and inter-trace latencies both help, and
    // each is bounded below by the zero-everything case.
    Program p = loopProgram(20000);
    SimConfig cfg = quickConfig();
    const SimResult base = CtcpSimulator(cfg, p).run();
    SimConfig c1 = cfg;
    c1.ablation.zeroIntraTraceForwardLatency = true;
    SimConfig c2 = cfg;
    c2.ablation.zeroInterTraceForwardLatency = true;
    SimConfig c3 = cfg;
    c3.ablation.zeroAllForwardLatency = true;
    const SimResult intra = CtcpSimulator(c1, p).run();
    const SimResult inter = CtcpSimulator(c2, p).run();
    const SimResult all = CtcpSimulator(c3, p).run();
    EXPECT_LE(intra.cycles, base.cycles);
    EXPECT_LE(inter.cycles, base.cycles);
    EXPECT_LE(all.cycles, intra.cycles);
    EXPECT_LE(all.cycles, inter.cycles);
}

TEST(Simulator, StatsAreInternallyConsistent)
{
    Program p = loopProgram(20000);
    SimConfig cfg = quickConfig();
    cfg.assign.strategy = AssignStrategy::Fdrt;
    SimResult r = CtcpSimulator(cfg, p).run();

    EXPECT_GE(r.pctFromTraceCache, 0.0);
    EXPECT_LE(r.pctFromTraceCache, 100.0);
    EXPECT_NEAR(r.pctCritFromRF + r.pctCritFromRs1 + r.pctCritFromRs2,
                100.0, 0.1);
    const double options = r.pctOptionA + r.pctOptionB + r.pctOptionC +
        r.pctOptionD + r.pctOptionE + r.pctSkipped;
    EXPECT_NEAR(options, 100.0, 0.1);
    EXPECT_GE(r.meanFwdDistance, 0.0);
    EXPECT_LE(r.meanFwdDistance, 3.0);
    EXPECT_FALSE(r.statsText.empty());
}

TEST(Simulator, TraceCacheDominatesSteadyStateFetch)
{
    Program p = loopProgram(30000);
    SimConfig cfg = quickConfig();
    SimResult r = CtcpSimulator(cfg, p).run();
    EXPECT_GT(r.pctFromTraceCache, 80.0);
    EXPECT_GT(r.tcHitRate, 50.0);
}

TEST(Simulator, BranchPredictorLearnsTheLoop)
{
    Program p = loopProgram(30000);
    SimResult r = CtcpSimulator(quickConfig(), p).run();
    EXPECT_GT(r.bpredAccuracy, 95.0);
}

TEST(Simulator, StepAndDoneInterface)
{
    Program p = loopProgram(10);
    CtcpSimulator sim(quickConfig(), p);
    EXPECT_FALSE(sim.done());
    unsigned steps = 0;
    while (!sim.done() && steps < 100000) {
        sim.step();
        ++steps;
    }
    EXPECT_TRUE(sim.done());
    EXPECT_EQ(sim.retired(), 84u);
    EXPECT_EQ(sim.now(), steps);
}

TEST(Simulator, AllStrategiesRetireIdenticalStreams)
{
    Program p = loopProgram(5000);
    SimConfig cfg = quickConfig();
    std::uint64_t insts[4];
    int i = 0;
    for (AssignStrategy s : {AssignStrategy::BaseSlotOrder,
                             AssignStrategy::Friendly, AssignStrategy::Fdrt,
                             AssignStrategy::IssueTime}) {
        cfg.assign.strategy = s;
        insts[i++] = CtcpSimulator(cfg, p).run().instructions;
    }
    EXPECT_EQ(insts[0], insts[1]);
    EXPECT_EQ(insts[0], insts[2]);
    EXPECT_EQ(insts[0], insts[3]);
}

/**
 * Run the same (config, program) with memoized dispatch plans on and
 * off and return both results. The plan cache is a pure performance
 * memo — every observable stat must be byte-identical either way.
 */
std::pair<SimResult, SimResult>
runPlansOnOff(SimConfig cfg, const Program &p)
{
    cfg.debug.disableDispatchPlans = false;
    SimResult with_plans = CtcpSimulator(cfg, p).run();
    cfg.debug.disableDispatchPlans = true;
    SimResult without_plans = CtcpSimulator(cfg, p).run();
    return {std::move(with_plans), std::move(without_plans)};
}

TEST(Simulator, DispatchPlanCacheInvisibleAllStrategies)
{
    Program p = workloadLikeLoop();
    SimConfig cfg = quickConfig();
    cfg.instructionLimit = 30000;
    for (AssignStrategy s :
         {AssignStrategy::BaseSlotOrder, AssignStrategy::Friendly,
          AssignStrategy::Fdrt, AssignStrategy::IssueTime,
          AssignStrategy::Adaptive}) {
        cfg.assign.strategy = s;
        const auto [planned, replanned] = runPlansOnOff(cfg, p);
        EXPECT_EQ(planned.toJson(), replanned.toJson())
            << "strategy " << planned.strategy;
        EXPECT_EQ(planned.statsText, replanned.statsText)
            << "strategy " << planned.strategy;
    }
}

/**
 * A loop whose body spans many basic blocks: each never-taken forward
 * branch ends a block, so one iteration constructs several distinct
 * trace lines — enough identities to thrash a tiny trace cache.
 */
Program
multiTraceLoop()
{
    ProgramBuilder b("multitrace");
    b.movi(intReg(1), 2000);
    b.movi(intReg(2), 0);
    b.movi(intReg(3), 0);
    b.label("top");
    for (int k = 0; k < 12; ++k) {
        b.addi(intReg(2), intReg(2), k + 1);
        b.xor_(intReg(3), intReg(3), intReg(2));
        b.add(intReg(4), intReg(3), intReg(2));
        b.bne(zeroReg, zeroReg, "skip" + std::to_string(k));
        b.label("skip" + std::to_string(k));
    }
    b.addi(intReg(1), intReg(1), -1);
    b.bne(intReg(1), zeroReg, "top");
    b.halt();
    return b.build();
}

TEST(Simulator, DispatchPlanCacheSurvivesTraceCacheEviction)
{
    // A deliberately tiny direct-mapped trace cache churns lines
    // constantly, so fetch keeps replaying plans from refilled lines.
    // Replayed bytes must match what the fill unit would recompute —
    // this is the invalidation contract: a plan lives and dies with
    // its trace line.
    Program p = multiTraceLoop();
    SimConfig cfg = quickConfig();
    cfg.instructionLimit = 30000;
    cfg.assign.strategy = AssignStrategy::Fdrt;
    cfg.frontEnd.traceCache.entries = 2;
    cfg.frontEnd.traceCache.assoc = 1;
    const auto [planned, replanned] = runPlansOnOff(cfg, p);
    // tc.evictions is not in the curated metrics map; pull it out of
    // the full stats dump to prove the config really churns lines.
    const std::size_t at = planned.statsText.find("tc.evictions");
    ASSERT_NE(at, std::string::npos);
    const double evicts = std::strtod(
        planned.statsText.c_str() + at + std::strlen("tc.evictions"),
        nullptr);
    EXPECT_GT(evicts, 0.0)
        << "config failed to provoke trace-cache eviction";
    EXPECT_EQ(planned.toJson(), replanned.toJson());
    EXPECT_EQ(planned.statsText, replanned.statsText);
}

TEST(Simulator, DispatchPlanCacheInvisibleAcrossAdaptiveSwitches)
{
    // The adaptive chooser swaps the assignment policy mid-run; plans
    // stamped before a switch may only be replayed while their line
    // survives, and the switch flushes construction state. On/off runs
    // must still agree byte for byte through real switches.
    Program p = workloadLikeLoop();
    SimConfig cfg = quickConfig();
    cfg.instructionLimit = 60000;
    cfg.assign.strategy = AssignStrategy::Adaptive;
    cfg.assign.adaptiveInterval = 1000;
    cfg.assign.adaptiveHysteresis = 1;
    const auto [planned, replanned] = runPlansOnOff(cfg, p);
    const auto intervals = planned.metrics.find("adaptive.intervals");
    ASSERT_NE(intervals, planned.metrics.end());
    EXPECT_GT(intervals->second, 1.0)
        << "run too short to exercise the adaptive chooser";
    EXPECT_EQ(planned.toJson(), replanned.toJson());
    EXPECT_EQ(planned.statsText, replanned.statsText);
}

TEST(Simulator, JsonOutputWellFormedAndComplete)
{
    Program p = loopProgram(5000);
    SimConfig cfg = quickConfig();
    cfg.assign.strategy = AssignStrategy::Fdrt;
    SimResult r = CtcpSimulator(cfg, p).run();
    const std::string json = r.toJson();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json[json.size() - 2], '}');
    for (const char *key :
         {"\"benchmark\"", "\"strategy\"", "\"cycles\"", "\"ipc\"",
          "\"pct_intra_cluster_fwd\"", "\"fdrt_option_a_pct\"",
          "\"mispredicts\""})
        EXPECT_NE(json.find(key), std::string::npos) << key;
    // No trailing comma before the closing brace.
    EXPECT_EQ(json.find(",\n}"), std::string::npos);
}

TEST(Simulator, PipelineTraceRecordsStages)
{
    Program p = loopProgram(500);
    SimConfig cfg = quickConfig();
    cfg.debug.pipelineTracePath = "pipeline_trace_test.txt";
    cfg.debug.traceCycles = 2000;   // enough for trace-cache fetches
    CtcpSimulator(cfg, p).run();

    std::FILE *f = std::fopen("pipeline_trace_test.txt", "r");
    ASSERT_NE(f, nullptr);
    std::string contents;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        contents.append(buf, n);
    std::fclose(f);
    std::remove("pipeline_trace_test.txt");

    for (const char *stage : {"fetch-ic", "fetch-tc", "rename", "issue",
                              "dispatch", "complete", "retire"})
        EXPECT_NE(contents.find(stage), std::string::npos) << stage;
    // Tracing stops after the configured cycle budget.
    EXPECT_EQ(contents.find("\n4000 "), std::string::npos);
}

TEST(Simulator, FillLatencyToleratedAtScale)
{
    // The paper's Section 4 claim: a large fill-unit latency has only
    // a small effect because trace construction is off the critical
    // path. Verify 1000 cycles costs < 10% on a steady-state loop.
    Program p = workloadLikeLoop();
    SimConfig fast = quickConfig();
    fast.assign.strategy = AssignStrategy::Fdrt;
    fast.instructionLimit = 100000;
    SimConfig slow = fast;
    slow.frontEnd.traceCache.fillLatency = 1000;
    const SimResult rf = CtcpSimulator(fast, p).run();
    const SimResult rs = CtcpSimulator(slow, p).run();
    // Within a few percent either way: second-order timing effects can
    // even make the delayed configuration marginally faster.
    EXPECT_GT(static_cast<double>(rs.cycles),
              static_cast<double>(rf.cycles) * 0.90);
    EXPECT_LT(static_cast<double>(rs.cycles),
              static_cast<double>(rf.cycles) * 1.10);
}

TEST(ConfigValidation, RejectsInconsistentGeometry)
{
    SimConfig cfg = baseConfig();
    cfg.frontEnd.fetchWidth = 8;   // != numClusters * clusterWidth
    EXPECT_THROW(cfg.validate(), SimError);

    SimConfig cfg2 = baseConfig();
    cfg2.frontEnd.traceCache.entries = 1000;   // not a power of two / assoc
    EXPECT_THROW(cfg2.validate(), SimError);
}

TEST(ConfigValidation, PresetsAreValid)
{
    baseConfig().validate();
    meshConfig().validate();
    oneCycleForwardConfig().validate();
    twoClusterConfig().validate();
    busConfig().validate();
    eightClusterConfig().validate();
    EXPECT_EQ(twoClusterConfig().cluster.numClusters, 2u);
    EXPECT_EQ(twoClusterConfig().frontEnd.fetchWidth, 8u);
    EXPECT_TRUE(meshConfig().cluster.mesh);
    EXPECT_EQ(oneCycleForwardConfig().cluster.hopLatency, 1u);
    EXPECT_TRUE(busConfig().cluster.bus);
    EXPECT_EQ(eightClusterConfig().frontEnd.fetchWidth, 32u);
}

TEST(ConfigValidation, BusAndMeshAreExclusive)
{
    SimConfig cfg = busConfig();
    cfg.cluster.mesh = true;
    EXPECT_THROW(cfg.validate(), SimError);
}

TEST(Simulator, BusSerializesBroadcasts)
{
    // With a one-broadcast-per-cycle bus, inter-cluster-heavy code
    // must be slower than on the point-to-point network, and the
    // intra-cluster share of forwards is unaffected by topology
    // under identical (base) placement.
    Program p = loopProgram(20000);
    SimConfig p2p = quickConfig();
    SimConfig bus = quickConfig();
    bus.cluster.bus = true;
    const SimResult rp = CtcpSimulator(p2p, p).run();
    const SimResult rb = CtcpSimulator(bus, p).run();
    EXPECT_GE(rb.cycles, rp.cycles);
    // Bus distances collapse to {0,1}.
    EXPECT_LE(rb.meanFwdDistance, 1.0);
}

TEST(Simulator, BusZeroForwardAblationRestoresSpeed)
{
    Program p = loopProgram(20000);
    SimConfig bus = quickConfig();
    bus.cluster.bus = true;
    SimConfig bus_free = bus;
    bus_free.ablation.zeroAllForwardLatency = true;
    const SimResult rb = CtcpSimulator(bus, p).run();
    const SimResult rf = CtcpSimulator(bus_free, p).run();
    EXPECT_LE(rf.cycles, rb.cycles);
}

TEST(Simulator, EightClusterMachineRuns)
{
    Program p = loopProgram(20000);
    SimConfig cfg = eightClusterConfig();
    cfg.instructionLimit = 0;
    const SimResult r = CtcpSimulator(cfg, p).run();
    EXPECT_EQ(r.instructions, 160004u);
    EXPECT_GT(r.ipc(), 0.1);
}

TEST(Simulator, FdrtChainsKnobChangesBehaviour)
{
    Program p = workloadLikeLoop();
    SimConfig with_chains = quickConfig();
    with_chains.assign.strategy = AssignStrategy::Fdrt;
    with_chains.instructionLimit = 60000;
    SimConfig without = with_chains;
    without.assign.fdrtChains = false;
    const SimResult rc = CtcpSimulator(with_chains, p).run();
    const SimResult rn = CtcpSimulator(without, p).run();
    // Chains disabled => no option B/C classifications at all.
    EXPECT_GT(rc.pctOptionB + rc.pctOptionC, 0.0);
    EXPECT_DOUBLE_EQ(rn.pctOptionB + rn.pctOptionC, 0.0);
}

TEST(Simulator, MeshNeverWorseOnForwardingDistance)
{
    Program p = loopProgram(20000);
    SimConfig lin = quickConfig();
    SimConfig mesh = quickConfig();
    mesh.cluster.mesh = true;
    const SimResult rl = CtcpSimulator(lin, p).run();
    const SimResult rm = CtcpSimulator(mesh, p).run();
    EXPECT_LE(rm.meanFwdDistance, rl.meanFwdDistance + 1e-9);
}

TEST(Simulator, TwoClusterConfigRuns)
{
    Program p = loopProgram(20000);
    SimConfig cfg = twoClusterConfig();
    cfg.instructionLimit = 0;
    SimResult r = CtcpSimulator(cfg, p).run();
    EXPECT_EQ(r.instructions, 160004u);
    EXPECT_GT(r.ipc(), 0.1);
}

} // namespace
} // namespace ctcp
