/**
 * @file
 * Unit tests for the StoreWindow disambiguation/forwarding indexes:
 * the resolved-prefix cursor must gate loads exactly like a full
 * window scan, and the per-word map must return the youngest older
 * same-word store.
 */

#include <gtest/gtest.h>

#include "core/store_window.hh"

namespace ctcp {
namespace {

OwnedTimedInst
makeStore(InstSeqNum seq, Addr addr)
{
    OwnedTimedInst t;
    t.dyn.seq = seq;
    t.dyn.op = Opcode::Store;
    t.dyn.effAddr = addr;
    return t;
}

OwnedTimedInst
makeLoad(InstSeqNum seq, Addr addr)
{
    OwnedTimedInst t;
    t.dyn.seq = seq;
    t.dyn.op = Opcode::Load;
    t.dyn.effAddr = addr;
    return t;
}

TEST(StoreWindow, EmptyWindowNeverGatesLoads)
{
    StoreWindow w;
    OwnedTimedInst load = makeLoad(5, 0x1000);
    EXPECT_TRUE(w.olderStoresDispatched(load));
    EXPECT_EQ(w.forwardingStore(load), nullptr);
    EXPECT_TRUE(w.empty());
}

TEST(StoreWindow, UnresolvedOlderStoreGatesLoad)
{
    StoreWindow w;
    OwnedTimedInst st = makeStore(3, 0x2000);
    w.insert(&st);

    OwnedTimedInst younger = makeLoad(7, 0x1000);
    OwnedTimedInst older = makeLoad(2, 0x1000);
    EXPECT_FALSE(w.olderStoresDispatched(younger));
    // A load older than every store in the window is never gated.
    EXPECT_TRUE(w.olderStoresDispatched(older));

    st.dispatched = true;
    EXPECT_TRUE(w.olderStoresDispatched(younger));
}

TEST(StoreWindow, PrefixAdvancesPastDispatchedRuns)
{
    StoreWindow w;
    OwnedTimedInst s1 = makeStore(1, 0x10);
    OwnedTimedInst s2 = makeStore(2, 0x20);
    OwnedTimedInst s3 = makeStore(3, 0x30);
    for (TimedInst *st : {&s1, &s2, &s3})
        w.insert(st);

    OwnedTimedInst load = makeLoad(4, 0x40);
    EXPECT_FALSE(w.olderStoresDispatched(load));

    // Out-of-order resolution: the youngest store resolving first must
    // not unblock the load while an older one is outstanding.
    s3.dispatched = true;
    EXPECT_FALSE(w.olderStoresDispatched(load));
    s1.dispatched = true;
    EXPECT_FALSE(w.olderStoresDispatched(load));
    s2.dispatched = true;
    EXPECT_TRUE(w.olderStoresDispatched(load));

    // A load between s2 and s3 is only blocked by s1/s2 — both are
    // resolved even before s3 is.
    s3.dispatched = false;
    OwnedTimedInst mid = makeLoad(3, 0x40);   // seq ties break on >=
    EXPECT_TRUE(w.olderStoresDispatched(mid));
}

TEST(StoreWindow, ForwardingPicksYoungestOlderSameWordStore)
{
    StoreWindow w;
    OwnedTimedInst s1 = makeStore(1, 0x1000);
    OwnedTimedInst s2 = makeStore(2, 0x1004);   // same 8-byte word as s1
    OwnedTimedInst s3 = makeStore(3, 0x2000);   // different word
    OwnedTimedInst s4 = makeStore(9, 0x1000);   // younger than the load
    for (TimedInst *st : {&s1, &s2, &s3, &s4})
        w.insert(st);

    OwnedTimedInst load = makeLoad(5, 0x1000);
    // s2 is the youngest store older than the load to the same word;
    // s4 matches the word but is younger and must be ignored.
    EXPECT_EQ(w.forwardingStore(load), &s2);

    OwnedTimedInst other = makeLoad(5, 0x3000);
    EXPECT_EQ(w.forwardingStore(other), nullptr);

    OwnedTimedInst third = makeLoad(5, 0x2004);
    EXPECT_EQ(w.forwardingStore(third), &s3);
}

TEST(StoreWindow, RetireDropsOldestAndKeepsIndexesInSync)
{
    StoreWindow w;
    OwnedTimedInst s1 = makeStore(1, 0x1000);
    OwnedTimedInst s2 = makeStore(2, 0x1000);
    w.insert(&s1);
    w.insert(&s2);
    s1.dispatched = true;
    s2.dispatched = true;

    OwnedTimedInst load = makeLoad(5, 0x1000);
    EXPECT_TRUE(w.olderStoresDispatched(load));
    EXPECT_EQ(w.forwardingStore(load), &s2);

    // Retiring a non-head instruction is a no-op (mirrors the original
    // front-check-and-pop).
    w.retire(&s2);
    EXPECT_EQ(w.size(), 2u);

    w.retire(&s1);
    EXPECT_EQ(w.size(), 1u);
    EXPECT_EQ(w.forwardingStore(load), &s2);
    EXPECT_TRUE(w.olderStoresDispatched(load));

    w.retire(&s2);
    EXPECT_TRUE(w.empty());
    EXPECT_EQ(w.forwardingStore(load), nullptr);
}

TEST(StoreWindow, InterleavedResolutionAndRetirement)
{
    // Exercise the prefix across retire boundaries: resolve, gate,
    // retire, insert more, and confirm the cursor stays exact.
    StoreWindow w;
    OwnedTimedInst s1 = makeStore(10, 0x100);
    OwnedTimedInst s2 = makeStore(20, 0x200);
    w.insert(&s1);
    w.insert(&s2);

    OwnedTimedInst mid = makeLoad(15, 0x300);
    EXPECT_FALSE(w.olderStoresDispatched(mid));
    s1.dispatched = true;
    EXPECT_TRUE(w.olderStoresDispatched(mid));

    w.retire(&s1);
    OwnedTimedInst s3 = makeStore(30, 0x100);
    w.insert(&s3);

    OwnedTimedInst tail = makeLoad(40, 0x100);
    EXPECT_FALSE(w.olderStoresDispatched(tail));
    s2.dispatched = true;
    EXPECT_FALSE(w.olderStoresDispatched(tail));
    s3.dispatched = true;
    EXPECT_TRUE(w.olderStoresDispatched(tail));
    EXPECT_EQ(w.forwardingStore(tail), &s3);
}

} // namespace
} // namespace ctcp
