/**
 * @file
 * Observability subsystem tests: sink filtering and draining, writer
 * failure modes, and — against a real 100k-instruction gzip/FDRT run —
 * well-formedness of the Chrome trace_event JSON, presence of every
 * event kind, per-instruction stage ordering, per-kind cycle
 * monotonicity, interval-CSV row count (exactly ceil(cycles / N)),
 * byte-identical reruns, and campaign telemetry determinism across
 * worker counts.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "config/presets.hh"
#include "core/simulator.hh"
#include "obs/sink.hh"
#include "obs/writers.hh"
#include "workload/workload.hh"

namespace ctcp {
namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot read " << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/**
 * Minimal recursive-descent JSON syntax checker. Accepts exactly the
 * JSON grammar (objects, arrays, strings with escapes, numbers,
 * true/false/null); valid() requires the whole input to be one value.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : s_(text) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    bool eof() const { return pos_ >= s_.size(); }
    char peek() const { return s_[pos_]; }

    void
    skipWs()
    {
        while (!eof() && std::isspace(static_cast<unsigned char>(peek())))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p, ++pos_)
            if (eof() || peek() != *p)
                return false;
        return true;
    }

    bool
    string()
    {
        if (eof() || peek() != '"')
            return false;
        ++pos_;
        while (!eof() && peek() != '"') {
            if (peek() == '\\') {
                ++pos_;
                if (eof())
                    return false;
            }
            ++pos_;
        }
        if (eof())
            return false;
        ++pos_;   // closing quote
        return true;
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (!eof() && peek() == '-')
            ++pos_;
        while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
            ++pos_;
        if (!eof() && peek() == '.') {
            ++pos_;
            while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (!eof() && (peek() == 'e' || peek() == 'E')) {
            ++pos_;
            if (!eof() && (peek() == '+' || peek() == '-'))
                ++pos_;
            while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        return pos_ > start;
    }

    bool
    value()
    {
        if (eof())
            return false;
        switch (peek()) {
          case '{': {
            ++pos_;
            skipWs();
            if (!eof() && peek() == '}') {
                ++pos_;
                return true;
            }
            while (true) {
                skipWs();
                if (!string())
                    return false;
                skipWs();
                if (eof() || peek() != ':')
                    return false;
                ++pos_;
                skipWs();
                if (!value())
                    return false;
                skipWs();
                if (!eof() && peek() == ',') {
                    ++pos_;
                    continue;
                }
                break;
            }
            if (eof() || peek() != '}')
                return false;
            ++pos_;
            return true;
          }
          case '[': {
            ++pos_;
            skipWs();
            if (!eof() && peek() == ']') {
                ++pos_;
                return true;
            }
            while (true) {
                skipWs();
                if (!value())
                    return false;
                skipWs();
                if (!eof() && peek() == ',') {
                    ++pos_;
                    continue;
                }
                break;
            }
            if (eof() || peek() != ']')
                return false;
            ++pos_;
            return true;
          }
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

/** ObsWriter that captures drained events in memory. */
class CaptureWriter : public ObsWriter
{
  public:
    explicit CaptureWriter(std::vector<ObsEvent> &out, int *ends = nullptr)
        : out_(out), ends_(ends)
    {
    }

    void write(const ObsEvent &event) override { out_.push_back(event); }

    void
    end() override
    {
        if (ends_)
            ++*ends_;
    }

  private:
    std::vector<ObsEvent> &out_;
    int *ends_;
};

/** The acceptance-criterion configuration: 100k-instruction gzip/FDRT. */
SimConfig
tracedConfig()
{
    SimConfig cfg = baseConfig();
    cfg.assign.strategy = AssignStrategy::Fdrt;
    cfg.instructionLimit = 100'000;
    return cfg;
}

constexpr std::uint64_t kInterval = 1'000;

struct TraceRun
{
    std::string jsonPath;
    std::string textPath;
    std::string csvPath;
    SimResult result;
};

/** One shared traced run; the expensive part happens once per binary. */
const TraceRun &
tracedRun()
{
    static const TraceRun run = [] {
        TraceRun r;
        // Paths are per-process: ctest runs each gtest case as its own
        // process, and under -j several of them rebuild this run
        // concurrently — fixed names would race on the same files.
        const std::string dir = testing::TempDir();
        const std::string tag =
            "ctcp_obs_run." + std::to_string(::getpid());
        r.jsonPath = dir + tag + ".trace.json";
        r.textPath = dir + tag + ".trace.txt";
        r.csvPath = dir + tag + ".intervals.csv";
        SimConfig cfg = tracedConfig();
        cfg.obs.traceEventsPath = r.jsonPath;
        cfg.obs.traceTextPath = r.textPath;
        cfg.obs.intervalPath = r.csvPath;
        cfg.obs.intervalCycles = kInterval;
        const Program program = workloads::build("gzip");
        CtcpSimulator sim(cfg, program);
        r.result = sim.run();
        return r;
    }();
    return run;
}

/** One parsed line of ObsTextWriter output. */
struct TextEvent
{
    std::uint64_t cycle = 0;
    std::string kind;
    std::uint64_t seq = invalidSeqNum;
};

std::vector<TextEvent>
parseTextTrace(const std::string &path)
{
    std::vector<TextEvent> events;
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot read " << path;
    std::string line;
    while (std::getline(in, line)) {
        std::istringstream fields(line);
        TextEvent ev;
        fields >> ev.cycle >> ev.kind;
        std::string tok;
        while (fields >> tok)
            if (tok.rfind("seq=", 0) == 0)
                ev.seq = std::stoull(tok.substr(4));
        events.push_back(ev);
    }
    return events;
}

// ---------------------------------------------------------------------
// Sink unit tests
// ---------------------------------------------------------------------

TEST(ObsSink, ParseFilterAcceptsAllAndEmpty)
{
    EXPECT_EQ(ObsSink::parseFilter(""), ObsSink::allKinds());
    EXPECT_EQ(ObsSink::parseFilter("all"), ObsSink::allKinds());
}

TEST(ObsSink, ParseFilterSelectsNamedKinds)
{
    const std::uint32_t mask = ObsSink::parseFilter("fetch,retire,tc-hit");
    ObsSink sink;
    sink.setFilter(mask);
    EXPECT_TRUE(sink.enabled(ObsKind::Fetch));
    EXPECT_TRUE(sink.enabled(ObsKind::Retire));
    EXPECT_TRUE(sink.enabled(ObsKind::TcHit));
    EXPECT_FALSE(sink.enabled(ObsKind::Issue));
    EXPECT_FALSE(sink.enabled(ObsKind::Mem));
}

TEST(ObsSink, ParseFilterRejectsUnknownKind)
{
    EXPECT_THROW(ObsSink::parseFilter("fetch,warp"), std::invalid_argument);
    EXPECT_THROW(ObsSink::parseFilter("FETCH"), std::invalid_argument);
    EXPECT_THROW(ObsSink::parseFilter("fetch,,retire"),
                 std::invalid_argument);
}

TEST(ObsSink, ParseFilterErrorNamesTheKindAndListsValidOnes)
{
    // The message is user-facing --trace-filter feedback: it must name
    // the offending token and enumerate the whole taxonomy.
    try {
        ObsSink::parseFilter("fetch,warp");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("'warp'"), std::string::npos) << msg;
        for (unsigned k = 0; k < numObsKinds; ++k)
            EXPECT_NE(msg.find(obsKindName(static_cast<ObsKind>(k))),
                      std::string::npos)
                << obsKindName(static_cast<ObsKind>(k));
    }
}

TEST(ObsSink, EveryKindNameRoundTrips)
{
    for (unsigned k = 0; k < numObsKinds; ++k) {
        const ObsKind kind = static_cast<ObsKind>(k);
        const std::uint32_t mask = ObsSink::parseFilter(obsKindName(kind));
        EXPECT_EQ(mask, 1u << k) << obsKindName(kind);
    }
}

TEST(ObsSink, RecordRespectsFilterAndCountsPerKind)
{
    std::vector<ObsEvent> seen;
    ObsSink sink;
    sink.addWriter(std::make_unique<CaptureWriter>(seen));
    sink.setFilter(ObsSink::parseFilter("fetch,retire"));

    ObsEvent fetch;
    fetch.kind = ObsKind::Fetch;
    ObsEvent issue;
    issue.kind = ObsKind::Issue;
    ObsEvent retire;
    retire.kind = ObsKind::Retire;
    sink.record(fetch);
    sink.record(issue);    // filtered out
    sink.record(retire);
    sink.record(fetch);
    sink.finish();

    EXPECT_EQ(sink.recorded(), 3u);
    EXPECT_EQ(sink.recorded(ObsKind::Fetch), 2u);
    EXPECT_EQ(sink.recorded(ObsKind::Retire), 1u);
    EXPECT_EQ(sink.recorded(ObsKind::Issue), 0u);
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0].kind, ObsKind::Fetch);
    EXPECT_EQ(seen[1].kind, ObsKind::Retire);
    EXPECT_EQ(seen[2].kind, ObsKind::Fetch);
}

TEST(ObsSink, RingDrainsToWriterWhenFull)
{
    std::vector<ObsEvent> seen;
    ObsSink sink(4);
    sink.addWriter(std::make_unique<CaptureWriter>(seen));
    ObsEvent ev;
    ev.kind = ObsKind::Fetch;
    for (std::uint64_t i = 0; i < 4; ++i) {
        ev.cycle = i;
        sink.record(ev);
    }
    // Capacity reached: the ring drained without an explicit flush.
    ASSERT_EQ(seen.size(), 4u);
    EXPECT_EQ(seen[3].cycle, 3u);
}

TEST(ObsSink, FinishIsIdempotent)
{
    std::vector<ObsEvent> seen;
    int ends = 0;
    ObsSink sink;
    sink.addWriter(std::make_unique<CaptureWriter>(seen, &ends));
    ObsEvent ev;
    ev.kind = ObsKind::Retire;
    sink.record(ev);
    sink.finish();
    sink.finish();
    EXPECT_EQ(seen.size(), 1u);
    EXPECT_EQ(ends, 1);
}

TEST(ObsWriters, UnwritablePathThrows)
{
    const std::string bad = "/no-such-dir-ctcp/obs.out";
    EXPECT_THROW(ChromeTraceWriter writer(bad), std::runtime_error);
    EXPECT_THROW(ObsTextWriter writer(bad), std::runtime_error);
}

// ---------------------------------------------------------------------
// End-to-end trace contents (shared 100k gzip/FDRT run)
// ---------------------------------------------------------------------

TEST(ObsTrace, ChromeJsonIsWellFormed)
{
    const std::string json = readFile(tracedRun().jsonPath);
    ASSERT_FALSE(json.empty());
    JsonChecker checker(json);
    EXPECT_TRUE(checker.valid());
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    // Track metadata Perfetto uses to lay out and label the rows.
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
}

TEST(ObsTrace, EveryEventKindAppears)
{
    const TraceRun &run = tracedRun();
    const std::string json = readFile(run.jsonPath);
    for (unsigned k = 0; k < numObsKinds; ++k) {
        const ObsKind kind = static_cast<ObsKind>(k);
        if (kind == ObsKind::Snapshot)
            continue; // only emitted by watchdog pipeline-state dumps
        const std::string cat =
            std::string("\"cat\":\"") + obsKindName(kind) + "\"";
        EXPECT_NE(json.find(cat), std::string::npos) << obsKindName(kind);
        const auto metric = run.result.metrics.find(
            std::string("obs.events.") + obsKindName(kind));
        ASSERT_NE(metric, run.result.metrics.end()) << obsKindName(kind);
        EXPECT_GT(metric->second, 0.0) << obsKindName(kind);
    }
}

TEST(ObsTrace, PipelineStagesOrderedPerInstruction)
{
    // Every instruction must move through the pipeline in order:
    // fetch <= rename <= issue <= execute <= complete <= retire.
    const std::vector<TextEvent> events =
        parseTextTrace(tracedRun().textPath);
    ASSERT_FALSE(events.empty());
    const std::vector<std::string> order = {
        "fetch", "rename", "issue", "execute", "complete", "retire"};
    std::map<std::uint64_t, std::map<std::string, std::uint64_t>> first;
    for (const TextEvent &ev : events)
        if (ev.seq != invalidSeqNum && !first[ev.seq].count(ev.kind))
            first[ev.seq][ev.kind] = ev.cycle;

    std::size_t checked = 0;
    for (const auto &[seq, stages] : first) {
        for (std::size_t i = 0; i + 1 < order.size(); ++i) {
            const auto a = stages.find(order[i]);
            const auto b = stages.find(order[i + 1]);
            if (a == stages.end() || b == stages.end())
                continue;
            ASSERT_LE(a->second, b->second)
                << "seq " << seq << ": " << order[i] << "@" << a->second
                << " after " << order[i + 1] << "@" << b->second;
            ++checked;
        }
    }
    // The run retires ~100k instructions; the ordering must have been
    // exercised across essentially all of them.
    EXPECT_GT(checked, 100'000u);
}

TEST(ObsTrace, CyclesMonotonePerKind)
{
    // Events are drained in record order, and every kind except "mem"
    // is stamped with the current cycle at emission, so each kind's
    // cycle sequence must be non-decreasing. ("mem" is stamped with
    // the load's service cycle, which can complete out of order.)
    const std::vector<TextEvent> events =
        parseTextTrace(tracedRun().textPath);
    ASSERT_FALSE(events.empty());
    std::map<std::string, std::uint64_t> last;
    for (const TextEvent &ev : events) {
        if (ev.kind == "mem")
            continue;
        const auto it = last.find(ev.kind);
        if (it != last.end()) {
            ASSERT_GE(ev.cycle, it->second) << ev.kind;
        }
        last[ev.kind] = ev.cycle;
    }
    EXPECT_GT(last.size(), 10u);   // most kinds seen
}

TEST(ObsTrace, IntervalCsvHasExactlyCeilRows)
{
    const TraceRun &run = tracedRun();
    const std::string csv = readFile(run.csvPath);
    const std::size_t lines =
        static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
    const std::uint64_t expected =
        (run.result.cycles + kInterval - 1) / kInterval;
    EXPECT_EQ(lines, expected + 1);   // header + ceil(cycles / N) rows
    EXPECT_EQ(csv.rfind("cycle,ipc,", 0), 0u);
    const auto rows = run.result.metrics.find("interval.rows");
    ASSERT_NE(rows, run.result.metrics.end());
    EXPECT_EQ(static_cast<std::uint64_t>(rows->second), expected);
}

TEST(ObsTrace, RerunIsByteIdentical)
{
    const TraceRun &run = tracedRun();
    const std::string dir = testing::TempDir();
    SimConfig cfg = tracedConfig();
    cfg.obs.traceEventsPath = dir + "ctcp_obs_rerun.trace.json";
    cfg.obs.traceTextPath = dir + "ctcp_obs_rerun.trace.txt";
    cfg.obs.intervalPath = dir + "ctcp_obs_rerun.intervals.csv";
    cfg.obs.intervalCycles = kInterval;
    const Program program = workloads::build("gzip");
    CtcpSimulator sim(cfg, program);
    const SimResult result = sim.run();

    EXPECT_EQ(result.cycles, run.result.cycles);
    EXPECT_EQ(readFile(cfg.obs.traceEventsPath), readFile(run.jsonPath));
    EXPECT_EQ(readFile(cfg.obs.traceTextPath), readFile(run.textPath));
    EXPECT_EQ(readFile(cfg.obs.intervalPath), readFile(run.csvPath));
}

TEST(ObsTrace, TracingDoesNotPerturbTheSimulation)
{
    // The observer must not change what it observes: an untraced run
    // of the same configuration produces identical results.
    const TraceRun &run = tracedRun();
    const Program program = workloads::build("gzip");
    CtcpSimulator sim(tracedConfig(), program);
    const SimResult result = sim.run();
    EXPECT_EQ(result.cycles, run.result.cycles);
    EXPECT_EQ(result.instructions, run.result.instructions);
    EXPECT_EQ(result.metrics.at("fwd.total"),
              run.result.metrics.at("fwd.total"));
    EXPECT_EQ(result.metrics.at("tc.hits"),
              run.result.metrics.at("tc.hits"));
    // Telemetry-only keys exist only when telemetry is on.
    EXPECT_EQ(result.metrics.count("obs.events.fetch"), 0u);
    EXPECT_EQ(result.metrics.count("interval.rows"), 0u);
}

TEST(ObsTrace, SimResultJsonCarriesMetricsMap)
{
    const std::string json = tracedRun().result.toJson();
    JsonChecker checker(json);
    EXPECT_TRUE(checker.valid());
    EXPECT_NE(json.find("\"metrics\""), std::string::npos);
    EXPECT_NE(json.find("\"fwd.total\""), std::string::npos);
    EXPECT_NE(json.find("\"obs.events.assign\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Campaign telemetry
// ---------------------------------------------------------------------

TEST(ObsCampaign, SanitizeLabelIsFilesystemSafe)
{
    EXPECT_EQ(campaign::sanitizeLabel("gzip/base/fdrt"),
              "gzip_base_fdrt");
    EXPECT_EQ(campaign::sanitizeLabel("a b@3:4"), "a_b_3_4");
    EXPECT_EQ(campaign::sanitizeLabel("ok-1.x_y"), "ok-1.x_y");
    EXPECT_EQ(campaign::sanitizeLabel(""), "job");
}

TEST(ObsCampaign, TelemetryDeterministicAcrossWorkerCounts)
{
    // The acceptance bar: per-job interval CSVs and event traces are
    // byte-identical whether the campaign runs serially or on 4
    // workers.
    std::vector<campaign::Job> jobs;
    for (const char *bench : {"gzip", "twolf"}) {
        for (AssignStrategy s :
             {AssignStrategy::BaseSlotOrder, AssignStrategy::Fdrt}) {
            SimConfig cfg = baseConfig();
            cfg.assign.strategy = s;
            cfg.instructionLimit = 20'000;
            jobs.push_back(campaign::makeJob(
                std::string(bench) + "/" + assignStrategyName(s), bench,
                cfg));
        }
    }

    const std::string base = testing::TempDir() + "ctcp_obs_campaign";
    const std::string dir1 = base + "_serial";
    const std::string dir4 = base + "_parallel";
    std::filesystem::create_directories(dir1);
    std::filesystem::create_directories(dir4);

    campaign::Options serial;
    serial.jobs = 1;
    serial.traceEventsDir = dir1;
    serial.intervalDir = dir1;
    serial.intervalCycles = 500;
    campaign::Options parallel = serial;
    parallel.jobs = 4;
    parallel.traceEventsDir = dir4;
    parallel.intervalDir = dir4;

    const campaign::Report r1 = campaign::runCampaign(jobs, serial);
    const campaign::Report r4 = campaign::runCampaign(jobs, parallel);
    ASSERT_EQ(r1.failed(), 0u);
    ASSERT_EQ(r4.failed(), 0u);
    EXPECT_EQ(r1.toJson(), r4.toJson());

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const campaign::Job &job = jobs[i];
        const std::string stem = campaign::jobFileStem(job.label, i);
        const std::string csv1 =
            readFile(dir1 + "/" + stem + ".intervals.csv");
        EXPECT_FALSE(csv1.empty()) << job.label;
        EXPECT_EQ(csv1, readFile(dir4 + "/" + stem + ".intervals.csv"))
            << job.label;
        const std::string trace1 =
            readFile(dir1 + "/" + stem + ".trace.json");
        EXPECT_FALSE(trace1.empty()) << job.label;
        EXPECT_EQ(trace1, readFile(dir4 + "/" + stem + ".trace.json"))
            << job.label;
        JsonChecker checker(trace1);
        EXPECT_TRUE(checker.valid()) << job.label;
    }
}

TEST(ObsCampaign, UnwritableTelemetryPathFailsJobInIsolation)
{
    SimConfig cfg = baseConfig();
    cfg.instructionLimit = 5'000;
    cfg.obs.traceEventsPath = "/no-such-dir-ctcp/job.trace.json";
    const std::vector<campaign::Job> jobs = {
        campaign::makeJob("bad", "gzip", cfg),
        campaign::makeJob("good", "gzip",
                          [] {
                              SimConfig ok = baseConfig();
                              ok.instructionLimit = 5'000;
                              return ok;
                          }()),
    };
    const campaign::Report report = campaign::runCampaign(jobs);
    EXPECT_EQ(report.failed(), 1u);
    EXPECT_FALSE(report.at("bad").ok());
    EXPECT_NE(report.at("bad").error.find("cannot open"),
              std::string::npos);
    EXPECT_NE(report.at("bad").error.find("/no-such-dir-ctcp/"),
              std::string::npos);
    EXPECT_TRUE(report.at("good").ok());
}

} // namespace
} // namespace ctcp
