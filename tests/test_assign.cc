/**
 * @file
 * Unit tests for the cluster-assignment policies: base identity,
 * Friendly slot-centric reordering, FDRT options A-E, chain
 * leader/follower mechanics, pinning, and issue-time steering.
 */

#include <gtest/gtest.h>

#include "assign/base_assignment.hh"
#include "common/random.hh"
#include "assign/fdrt_assignment.hh"
#include "assign/friendly_assignment.hh"
#include "assign/issue_time_steering.hh"
#include "tracecache/trace_cache.hh"

namespace ctcp {
namespace {

/** Draft with @p n independent single-source instructions. */
TraceDraft
makeDraft(std::size_t n)
{
    TraceDraft d;
    d.numClusters = 4;
    d.slotsPerCluster = 4;
    for (std::size_t i = 0; i < n; ++i) {
        DraftInst di;
        di.pc = 100 + i;
        di.dst = invalidReg;
        di.src1 = invalidReg;
        di.src2 = invalidReg;
        di.intraProducer = -1;
        d.insts.push_back(di);
    }
    return d;
}

/** Mark @p consumer as critically dependent on draft index @p producer. */
void
link(TraceDraft &d, std::size_t producer, std::size_t consumer, RegId reg)
{
    d.insts[producer].dst = reg;
    d.insts[producer].writesDst = true;
    d.insts[producer].hasIntraConsumer = true;
    d.insts[consumer].src1 = reg;
    d.insts[consumer].criticalSrc = 1;
    d.insts[consumer].criticalForwarded = true;
    d.insts[consumer].intraProducer = static_cast<int>(producer);
}

void
expectValidPermutation(const TraceDraft &d)
{
    std::vector<bool> taken(d.totalSlots(), false);
    for (const DraftInst &inst : d.insts) {
        ASSERT_GE(inst.physSlot, 0);
        ASSERT_LT(inst.physSlot, static_cast<int>(d.totalSlots()));
        EXPECT_FALSE(taken[static_cast<std::size_t>(inst.physSlot)])
            << "slot " << inst.physSlot << " assigned twice";
        taken[static_cast<std::size_t>(inst.physSlot)] = true;
    }
}

ClusterId
clusterOf(const TraceDraft &d, std::size_t i)
{
    return d.clusterOfSlot(d.insts[i].physSlot);
}

TEST(BaseAssignment, IdentityOrder)
{
    BaseSlotOrderAssignment base;
    TraceDraft d = makeDraft(7);
    base.assign(d);
    for (std::size_t i = 0; i < 7; ++i)
        EXPECT_EQ(d.insts[i].physSlot, static_cast<int>(i));
}

TEST(FriendlyAssignment, CoLocatesDependents)
{
    ClusterConfig cc;
    Interconnect ic(cc);
    FriendlyAssignment friendly(ic, false);

    TraceDraft d = makeDraft(8);
    link(d, 0, 4, intReg(1));
    link(d, 1, 5, intReg(2));
    friendly.assign(d);
    expectValidPermutation(d);
    EXPECT_EQ(clusterOf(d, 0), clusterOf(d, 4));
    EXPECT_EQ(clusterOf(d, 1), clusterOf(d, 5));
}

TEST(FriendlyAssignment, MiddleBiasFillsCentreFirst)
{
    ClusterConfig cc;
    Interconnect ic(cc);
    FriendlyAssignment friendly(ic, true);
    TraceDraft d = makeDraft(4);
    friendly.assign(d);
    expectValidPermutation(d);
    // Four independent instructions all land in the two middle
    // clusters under the bias.
    for (std::size_t i = 0; i < 4; ++i) {
        const ClusterId c = clusterOf(d, i);
        EXPECT_TRUE(c == 1 || c == 2) << "cluster " << int(c);
    }
}

TEST(FriendlyAssignment, EveryInstructionPlacedOnFullTrace)
{
    ClusterConfig cc;
    Interconnect ic(cc);
    FriendlyAssignment friendly(ic, false);
    TraceDraft d = makeDraft(16);
    for (std::size_t i = 1; i < 16; ++i)
        link(d, i - 1, i, static_cast<RegId>(1 + (i % 20)));
    friendly.assign(d);
    expectValidPermutation(d);
}

class FdrtTest : public ::testing::Test
{
  protected:
    ClusterConfig cc_;
    Interconnect ic_{cc_};
    FdrtAssignment fdrt_{ic_, true};
};

TEST_F(FdrtTest, OptionAPlacesWithProducer)
{
    TraceDraft d = makeDraft(8);
    link(d, 0, 4, intReg(1));
    fdrt_.assign(d);
    expectValidPermutation(d);
    EXPECT_EQ(clusterOf(d, 0), clusterOf(d, 4));
    EXPECT_EQ(d.insts[4].fdrtOption, 'A');
}

TEST_F(FdrtTest, ParallelChainsGetDisjointClusters)
{
    // Four independent 4-deep chains must spread one per cluster.
    TraceDraft d = makeDraft(16);
    for (int k = 0; k < 4; ++k)
        for (int j = 0; j < 3; ++j)
            link(d, static_cast<std::size_t>(k + 4 * j),
                 static_cast<std::size_t>(k + 4 * (j + 1)),
                 static_cast<RegId>(10 + k));
    fdrt_.assign(d);
    expectValidPermutation(d);
    for (int k = 0; k < 4; ++k) {
        const ClusterId head = clusterOf(d, static_cast<std::size_t>(k));
        for (int j = 1; j < 4; ++j)
            EXPECT_EQ(clusterOf(d, static_cast<std::size_t>(k + 4 * j)),
                      head) << "chain " << k << " link " << j;
    }
    // All four clusters used.
    std::set<ClusterId> used;
    for (int k = 0; k < 4; ++k)
        used.insert(clusterOf(d, static_cast<std::size_t>(k)));
    EXPECT_EQ(used.size(), 4u);
}

TEST_F(FdrtTest, OptionBFollowsChainCluster)
{
    TraceDraft d = makeDraft(4);
    d.insts[2].carriedProfile = {};   // fluid membership: derive fresh
    d.insts[2].criticalForwarded = true;
    d.insts[2].criticalInterTrace = true;
    d.insts[2].criticalSrc = 1;
    d.insts[2].src1 = intReg(9);
    d.insts[2].criticalProducerProfile.role = ChainRole::Leader;
    d.insts[2].criticalProducerProfile.chainCluster = 3;
    fdrt_.assign(d);
    expectValidPermutation(d);
    EXPECT_EQ(d.insts[2].fdrtOption, 'B');
    EXPECT_EQ(clusterOf(d, 2), 3);
    EXPECT_EQ(d.insts[2].newProfile.role, ChainRole::Follower);
    EXPECT_EQ(d.insts[2].newProfile.chainCluster, 3);
}

TEST_F(FdrtTest, OptionDUsesMiddleClusters)
{
    TraceDraft d = makeDraft(2);
    link(d, 0, 1, intReg(1));
    d.insts[1].criticalForwarded = false;   // producer only matters
    d.insts[1].criticalSrc = 0;
    d.insts[1].intraProducer = -1;
    fdrt_.assign(d);
    EXPECT_EQ(d.insts[0].fdrtOption, 'D');
    const ClusterId c = clusterOf(d, 0);
    EXPECT_TRUE(c == 1 || c == 2);
}

TEST_F(FdrtTest, OptionEDeferredToSecondPass)
{
    TraceDraft d = makeDraft(3);
    fdrt_.assign(d);
    expectValidPermutation(d);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(d.insts[i].fdrtOption, 'E');
    EXPECT_EQ(fdrt_.optionStats().optionE, 3u);
}

TEST_F(FdrtTest, LeaderPromotionViaFeedback)
{
    TraceCacheConfig tcc;
    tcc.entries = 8;
    tcc.assoc = 2;
    TraceCache tc(tcc);

    OwnedTimedInst consumer;
    consumer.cold().criticalForwarded = true;
    consumer.cold().criticalInterTrace = true;
    consumer.cold().criticalProducerPc = 500;
    consumer.cold().criticalProducerCluster = 2;
    consumer.cold().criticalProducerTraceKey = 0;
    fdrt_.noteCriticalForward(consumer, tc);
    EXPECT_EQ(fdrt_.promotions(), 1u);
    EXPECT_EQ(fdrt_.pinCount(), 1u);

    // The producer's next construction sees the promotion.
    TraceDraft d = makeDraft(1);
    d.insts[0].pc = 500;
    fdrt_.assign(d);
    EXPECT_EQ(d.insts[0].newProfile.role, ChainRole::Leader);
    EXPECT_NE(d.insts[0].newProfile.chainCluster, invalidCluster);
}

TEST_F(FdrtTest, PinningFixesLeaderCluster)
{
    TraceCacheConfig tcc;
    tcc.entries = 8;
    tcc.assoc = 2;
    TraceCache tc(tcc);

    OwnedTimedInst consumer;
    consumer.cold().criticalForwarded = true;
    consumer.cold().criticalInterTrace = true;
    consumer.cold().criticalProducerPc = 500;
    consumer.cold().criticalProducerCluster = 2;
    fdrt_.noteCriticalForward(consumer, tc);

    TraceDraft d1 = makeDraft(1);
    d1.insts[0].pc = 500;
    fdrt_.assign(d1);
    const ClusterId first = d1.insts[0].newProfile.chainCluster;

    // Re-promote from a different cluster: the pin must not move.
    consumer.cold().criticalProducerCluster = 0;
    fdrt_.noteCriticalForward(consumer, tc);
    TraceDraft d2 = makeDraft(1);
    d2.insts[0].pc = 500;
    fdrt_.assign(d2);
    EXPECT_EQ(d2.insts[0].newProfile.chainCluster, first);
}

TEST(FdrtNoPinning, SuggestionTracksProducerCluster)
{
    ClusterConfig cc;
    Interconnect ic(cc);
    FdrtAssignment fdrt(ic, false);
    TraceCacheConfig tcc;
    tcc.entries = 8;
    tcc.assoc = 2;
    TraceCache tc(tcc);

    OwnedTimedInst consumer;
    consumer.cold().criticalForwarded = true;
    consumer.cold().criticalInterTrace = true;
    consumer.cold().criticalProducerPc = 500;
    consumer.cold().criticalProducerCluster = 3;
    fdrt.noteCriticalForward(consumer, tc);

    TraceDraft d = makeDraft(1);
    d.insts[0].pc = 500;
    fdrt.assign(d);
    EXPECT_EQ(d.insts[0].newProfile.chainCluster, 3);
    EXPECT_EQ(fdrt.pinCount(), 0u);
}

TEST_F(FdrtTest, NonCriticalForwardsDoNotPromote)
{
    TraceCacheConfig tcc;
    tcc.entries = 8;
    tcc.assoc = 2;
    TraceCache tc(tcc);
    OwnedTimedInst consumer;
    consumer.cold().criticalForwarded = false;
    consumer.cold().criticalInterTrace = true;
    fdrt_.noteCriticalForward(consumer, tc);
    consumer.cold().criticalForwarded = true;
    consumer.cold().criticalInterTrace = false;
    fdrt_.noteCriticalForward(consumer, tc);
    EXPECT_EQ(fdrt_.promotions(), 0u);
}

// Property sweep: for any mix of chains and dependencies, assignment
// must yield a valid permutation with every instruction placed.
class FdrtPermutationSweep : public ::testing::TestWithParam<int>
{};

TEST_P(FdrtPermutationSweep, AlwaysValidPermutation)
{
    ClusterConfig cc;
    Interconnect ic(cc);
    FdrtAssignment fdrt(ic, true);
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);

    for (int round = 0; round < 50; ++round) {
        const std::size_t n = 1 + rng.below(16);
        TraceDraft d = makeDraft(n);
        for (std::size_t i = 1; i < n; ++i) {
            if (rng.chance(1, 2))
                link(d, rng.below(i), i,
                     static_cast<RegId>(1 + rng.below(25)));
            if (rng.chance(1, 4)) {
                d.insts[i].criticalInterTrace = true;
                d.insts[i].criticalForwarded = true;
                d.insts[i].criticalSrc = 1;
                d.insts[i].src1 = static_cast<RegId>(1 + rng.below(25));
                d.insts[i].intraProducer = -1;
                d.insts[i].criticalProducerProfile.role = ChainRole::Leader;
                d.insts[i].criticalProducerProfile.chainCluster =
                    static_cast<ClusterId>(rng.below(4));
            }
        }
        fdrt.assign(d);
        expectValidPermutation(d);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FdrtPermutationSweep,
                         ::testing::Range(0, 8));

// Friendly must also always produce valid permutations.
class FriendlyPermutationSweep : public ::testing::TestWithParam<int>
{};

TEST_P(FriendlyPermutationSweep, AlwaysValidPermutation)
{
    ClusterConfig cc;
    Interconnect ic(cc);
    FriendlyAssignment friendly(ic, GetParam() % 2 == 1);
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 3);

    for (int round = 0; round < 50; ++round) {
        const std::size_t n = 1 + rng.below(16);
        TraceDraft d = makeDraft(n);
        for (std::size_t i = 1; i < n; ++i)
            if (rng.chance(2, 3))
                link(d, rng.below(i), i,
                     static_cast<RegId>(1 + rng.below(25)));
        friendly.assign(d);
        expectValidPermutation(d);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FriendlyPermutationSweep,
                         ::testing::Range(0, 8));

// ---------------------------------------------------------------------
// Issue-time steering
// ---------------------------------------------------------------------

TEST(IssueTimeSteering, PrefersInFlightProducerCluster)
{
    ClusterConfig cc;
    Interconnect ic(cc);
    std::vector<Cluster> clusters;
    for (unsigned c = 0; c < 4; ++c)
        clusters.emplace_back(static_cast<ClusterId>(c), cc);
    IssueTimeSteering steer(ic, 4);
    steer.newCycle(1);

    OwnedTimedInst producer;
    producer.dyn.seq = 1;
    producer.dyn.op = Opcode::Add;
    producer.cluster = 2;

    OwnedTimedInst consumer;
    consumer.dyn.seq = 2;
    consumer.dyn.op = Opcode::Add;
    consumer.ops[0].valid = true;
    consumer.ops[0].fromRF = false;
    consumer.ops[0].producerPtr = &producer;
    consumer.ops[0].producerSeq = 1;

    EXPECT_EQ(steer.pick(consumer, clusters), 2);
}

TEST(IssueTimeSteering, PerCycleCapRedirects)
{
    ClusterConfig cc;
    Interconnect ic(cc);
    std::vector<Cluster> clusters;
    for (unsigned c = 0; c < 4; ++c)
        clusters.emplace_back(static_cast<ClusterId>(c), cc);
    IssueTimeSteering steer(ic, 2);
    steer.newCycle(5);

    OwnedTimedInst free_inst;
    free_inst.dyn.op = Opcode::Add;
    // No producers: balance fallback spreads picks; with cap 2 per
    // cluster per cycle, exactly 8 picks succeed in one cycle.
    std::vector<unsigned> per_cluster(4, 0);
    for (int i = 0; i < 8; ++i) {
        const ClusterId c = steer.pick(free_inst, clusters);
        ASSERT_NE(c, invalidCluster);
        ++per_cluster[static_cast<std::size_t>(c)];
    }
    EXPECT_EQ(steer.pick(free_inst, clusters), invalidCluster);
    for (unsigned n : per_cluster)
        EXPECT_EQ(n, 2u);   // cap respected and load balanced
}

TEST(IssueTimeSteering, NewCycleResetsCaps)
{
    ClusterConfig cc;
    Interconnect ic(cc);
    std::vector<Cluster> clusters;
    for (unsigned c = 0; c < 4; ++c)
        clusters.emplace_back(static_cast<ClusterId>(c), cc);
    IssueTimeSteering steer(ic, 1);

    OwnedTimedInst inst;
    inst.dyn.op = Opcode::Add;
    steer.newCycle(1);
    for (int i = 0; i < 4; ++i)
        EXPECT_NE(steer.pick(inst, clusters), invalidCluster);
    EXPECT_EQ(steer.pick(inst, clusters), invalidCluster);   // all capped
    steer.newCycle(2);
    EXPECT_NE(steer.pick(inst, clusters), invalidCluster);
}

} // namespace
} // namespace ctcp
