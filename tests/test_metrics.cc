/**
 * @file
 * Metrics registry semantics: counter/gauge/histogram behavior, the
 * Prometheus text exposition (families, labels, escaping, cumulative
 * histogram buckets), and thread safety of concurrent increments.
 */

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.hh"

using ctcp::obs::MetricsRegistry;

namespace {

bool
contains(const std::string &haystack, const std::string &needle)
{
    return haystack.find(needle) != std::string::npos;
}

TEST(Metrics, CounterIncrementsMonotonically)
{
    MetricsRegistry registry;
    ctcp::obs::Counter &c = registry.counter("c_total", "help");
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
}

TEST(Metrics, CounterIncToIsRaiseOnly)
{
    MetricsRegistry registry;
    ctcp::obs::Counter &c = registry.counter("c_total", "help");
    c.incTo(10);
    EXPECT_EQ(c.value(), 10u);
    c.incTo(7); // stale total: never goes backwards
    EXPECT_EQ(c.value(), 10u);
    c.incTo(12);
    EXPECT_EQ(c.value(), 12u);
}

TEST(Metrics, GaugeSetsAndAdds)
{
    MetricsRegistry registry;
    ctcp::obs::Gauge &g = registry.gauge("g", "help");
    g.set(3.5);
    EXPECT_DOUBLE_EQ(g.value(), 3.5);
    g.add(-1.5);
    EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

TEST(Metrics, SameNameAndLabelsReturnsTheSameInstrument)
{
    MetricsRegistry registry;
    ctcp::obs::Counter &a =
        registry.counter("c_total", "help", {{"k", "v"}});
    ctcp::obs::Counter &b =
        registry.counter("c_total", "", {{"k", "v"}});
    ctcp::obs::Counter &other =
        registry.counter("c_total", "", {{"k", "w"}});
    a.inc();
    EXPECT_EQ(&a, &b);
    EXPECT_NE(&a, &other);
    EXPECT_EQ(b.value(), 1u);
    EXPECT_EQ(other.value(), 0u);
}

TEST(Metrics, HistogramFillsCorrectBuckets)
{
    MetricsRegistry registry;
    ctcp::obs::Histogram &h =
        registry.histogram("h_seconds", "help", {0.1, 1.0, 10.0});
    h.observe(0.05); // bucket 0
    h.observe(0.1);  // bucket 0 (le is inclusive)
    h.observe(0.5);  // bucket 1
    h.observe(99.0); // +Inf overflow
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 0u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.05 + 0.1 + 0.5 + 99.0);
}

TEST(Metrics, ExpositionRendersFamiliesAndSamples)
{
    MetricsRegistry registry;
    registry.counter("requests_total", "Requests served.").inc(3);
    registry
        .gauge("busy", "Busy workers.", {{"pool", "default"}})
        .set(2);
    registry.histogram("lat_seconds", "Latency.", {0.5}).observe(0.25);
    const std::string text = registry.exposition();

    EXPECT_TRUE(contains(text, "# HELP requests_total Requests served.\n"));
    EXPECT_TRUE(contains(text, "# TYPE requests_total counter\n"));
    EXPECT_TRUE(contains(text, "requests_total 3\n"));
    EXPECT_TRUE(contains(text, "# TYPE busy gauge\n"));
    EXPECT_TRUE(contains(text, "busy{pool=\"default\"} 2\n"));
    EXPECT_TRUE(contains(text, "# TYPE lat_seconds histogram\n"));
    EXPECT_TRUE(contains(text, "lat_seconds_bucket{le=\"0.5\"} 1\n"));
    EXPECT_TRUE(contains(text, "lat_seconds_bucket{le=\"+Inf\"} 1\n"));
    EXPECT_TRUE(contains(text, "lat_seconds_sum 0.25\n"));
    EXPECT_TRUE(contains(text, "lat_seconds_count 1\n"));
}

TEST(Metrics, ExpositionHistogramBucketsAreCumulative)
{
    MetricsRegistry registry;
    ctcp::obs::Histogram &h =
        registry.histogram("h_seconds", "help", {1.0, 2.0});
    h.observe(0.5);
    h.observe(1.5);
    h.observe(9.0);
    const std::string text = registry.exposition();
    EXPECT_TRUE(contains(text, "h_seconds_bucket{le=\"1\"} 1\n"));
    EXPECT_TRUE(contains(text, "h_seconds_bucket{le=\"2\"} 2\n"));
    EXPECT_TRUE(contains(text, "h_seconds_bucket{le=\"+Inf\"} 3\n"));
}

TEST(Metrics, ExpositionEscapesHelpAndLabelValues)
{
    MetricsRegistry registry;
    registry.counter("c_total", "line one\nline \\two",
                     {{"path", "a\"b\\c\nd"}});
    const std::string text = registry.exposition();
    EXPECT_TRUE(
        contains(text, "# HELP c_total line one\\nline \\\\two\n"));
    EXPECT_TRUE(contains(text, "c_total{path=\"a\\\"b\\\\c\\nd\"} 0\n"));
}

TEST(Metrics, DeclaredFamiliesRenderBeforeFirstUse)
{
    // A labeled family has no children until first use; declaring it
    // still surfaces HELP/TYPE so scrapers can discover the catalogue
    // on a fresh daemon.
    MetricsRegistry registry;
    registry.declareCounter("later_total", "Declared, unused.");
    registry.declareHistogram("lat_seconds", "Latency.", {1.0});
    const std::string text = registry.exposition();
    EXPECT_TRUE(contains(text, "# HELP later_total Declared, unused.\n"));
    EXPECT_TRUE(contains(text, "# TYPE later_total counter\n"));
    EXPECT_TRUE(contains(text, "# TYPE lat_seconds histogram\n"));
    EXPECT_FALSE(contains(text, "later_total 0"));
}

TEST(Metrics, ConcurrentIncrementsLoseNothing)
{
    MetricsRegistry registry;
    constexpr int kThreads = 8;
    constexpr int kPerThread = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&registry] {
            // Half the threads race the get-or-create path too.
            for (int i = 0; i < kPerThread; ++i) {
                registry.counter("racy_total", "help").inc();
                registry
                    .histogram("racy_seconds", "help", {0.5},
                               {{"side", i % 2 ? "a" : "b"}})
                    .observe(0.25);
            }
        });
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(registry.counter("racy_total", "").value(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
    const std::uint64_t observed =
        registry.histogram("racy_seconds", "", {0.5}, {{"side", "a"}})
            .count() +
        registry.histogram("racy_seconds", "", {0.5}, {{"side", "b"}})
            .count();
    EXPECT_EQ(observed, static_cast<std::uint64_t>(kThreads) * kPerThread);
}

} // namespace
