/**
 * @file
 * Topology abstraction tests: the distance/latency matrices of every
 * interconnect variant, the legacy mesh/bus flag aliases, and the
 * differential oracles that tie the new topologies to machines the
 * repo already trusts (crossbar == unbounded bus, 2-cluster ring ==
 * 2-cluster linear chain, one-group hierarchy == crossbar) — all
 * byte-identical at the serialized-result level, accounting included.
 */

#include <gtest/gtest.h>

#include <string>

#include "cluster/interconnect.hh"
#include "config/presets.hh"
#include "core/simulator.hh"
#include "workload/workload.hh"

namespace ctcp {
namespace {

ClusterConfig
clusterConfig(Topology topo)
{
    ClusterConfig cc = baseConfig().cluster;
    cc.topology = topo;
    return cc;
}

// --- Matrix unit tests -----------------------------------------------------

TEST(TopologyMatrix, LinearChainIsAbsoluteDistance)
{
    const ClusterConfig cc = clusterConfig(Topology::LinearChain);
    const Interconnect icn(cc);
    for (int f = 0; f < 4; ++f)
        for (int t = 0; t < 4; ++t) {
            const unsigned hops = static_cast<unsigned>(std::abs(f - t));
            EXPECT_EQ(icn.distance(f, t), hops);
            EXPECT_EQ(icn.latency(f, t), hops * cc.hopLatency);
        }
    EXPECT_EQ(icn.maxDistance(), 3u);
    EXPECT_FALSE(icn.isBus());
    EXPECT_FALSE(icn.isMesh());
}

TEST(TopologyMatrix, RingWrapsAround)
{
    ClusterConfig cc = clusterConfig(Topology::Ring);
    const Interconnect four(cc);
    EXPECT_EQ(four.distance(0, 3), 1u);   // wraps: 0 -> 3 directly
    EXPECT_EQ(four.distance(3, 0), 1u);
    EXPECT_EQ(four.distance(0, 2), 2u);
    EXPECT_EQ(four.distance(1, 3), 2u);
    EXPECT_EQ(four.latency(0, 3), cc.hopLatency);
    EXPECT_EQ(four.maxDistance(), 2u);
    EXPECT_TRUE(four.isMesh());

    cc.numClusters = 5;
    const Interconnect five(cc);
    EXPECT_EQ(five.distance(0, 3), 2u);   // the short way round
    EXPECT_EQ(five.distance(0, 4), 1u);
    EXPECT_EQ(five.maxDistance(), 2u);
}

TEST(TopologyMatrix, CrossbarIsOneHopEverywhere)
{
    const ClusterConfig cc = clusterConfig(Topology::Crossbar);
    const Interconnect icn(cc);
    for (int f = 0; f < 4; ++f)
        for (int t = 0; t < 4; ++t) {
            EXPECT_EQ(icn.distance(f, t), f == t ? 0u : 1u);
            EXPECT_EQ(icn.latency(f, t),
                      f == t ? 0u : cc.hopLatency);
        }
    EXPECT_EQ(icn.maxDistance(), 1u);
}

TEST(TopologyMatrix, HierarchicalChargesGroupCrossings)
{
    ClusterConfig cc = clusterConfig(Topology::Hierarchical);
    cc.hierGroupSize = 2;
    cc.hierGroupLatency = 3;
    const Interconnect icn(cc);
    // Clusters {0,1} and {2,3} form groups: one hop inside, two hops
    // plus the group-link penalty across.
    EXPECT_EQ(icn.distance(0, 1), 1u);
    EXPECT_EQ(icn.latency(0, 1), cc.hopLatency);
    EXPECT_EQ(icn.distance(0, 2), 2u);
    EXPECT_EQ(icn.latency(0, 2), 2 * cc.hopLatency + 3);
    EXPECT_EQ(icn.distance(1, 3), 2u);
    EXPECT_EQ(icn.maxDistance(), 2u);
}

TEST(TopologyMatrix, BusIsUniformSingleHop)
{
    const ClusterConfig cc = clusterConfig(Topology::Bus);
    const Interconnect icn(cc);
    for (int f = 0; f < 4; ++f)
        for (int t = 0; t < 4; ++t) {
            EXPECT_EQ(icn.distance(f, t), f == t ? 0u : 1u);
            EXPECT_EQ(icn.latency(f, t),
                      f == t ? 0u : cc.busLatency);
        }
    EXPECT_TRUE(icn.isBus());
    EXPECT_EQ(icn.maxDistance(), 1u);
}

TEST(TopologyMatrix, LegacyFlagsAliasIntoTopologies)
{
    ClusterConfig mesh = baseConfig().cluster;
    mesh.mesh = true;
    EXPECT_EQ(mesh.effectiveTopology(), Topology::Ring);
    const Interconnect mesh_icn(mesh);
    const Interconnect ring_icn(clusterConfig(Topology::Ring));
    for (int f = 0; f < 4; ++f)
        for (int t = 0; t < 4; ++t) {
            EXPECT_EQ(mesh_icn.distance(f, t), ring_icn.distance(f, t));
            EXPECT_EQ(mesh_icn.latency(f, t), ring_icn.latency(f, t));
        }

    ClusterConfig bus = baseConfig().cluster;
    bus.bus = true;
    EXPECT_EQ(bus.effectiveTopology(), Topology::Bus);
    EXPECT_TRUE(Interconnect(bus).isBus());
}

TEST(TopologyMatrix, NamesRoundTripAndMeshParsesAsRing)
{
    for (const Topology t :
         {Topology::LinearChain, Topology::Ring, Topology::Crossbar,
          Topology::Hierarchical, Topology::Bus}) {
        Topology parsed = Topology::LinearChain;
        EXPECT_TRUE(parseTopology(topologyName(t), parsed))
            << topologyName(t);
        EXPECT_EQ(parsed, t);
    }
    Topology parsed = Topology::LinearChain;
    EXPECT_TRUE(parseTopology("mesh", parsed));
    EXPECT_EQ(parsed, Topology::Ring);
    EXPECT_FALSE(parseTopology("torus", parsed));
}

TEST(TopologyMatrix, CentralityOrderIsTopologyIndependent)
{
    // The FDRT middle-first funnel must not change when only the
    // interconnect changes — it is part of the golden contract for
    // the pre-existing presets.
    const std::vector<ClusterId> expected =
        Interconnect(clusterConfig(Topology::LinearChain)).byCentrality();
    ASSERT_EQ(expected.size(), 4u);
    EXPECT_EQ(expected[0], 1);
    EXPECT_EQ(expected[1], 2);
    for (const Topology t : {Topology::Ring, Topology::Crossbar,
                             Topology::Hierarchical, Topology::Bus})
        EXPECT_EQ(Interconnect(clusterConfig(t)).byCentrality(),
                  expected)
            << topologyName(t);
}

// --- Differential oracles --------------------------------------------------

SimResult
runConfig(SimConfig cfg, AssignStrategy strategy)
{
    cfg.assign.strategy = strategy;
    cfg.instructionLimit = 25'000;
    cfg.checkLevel = 1;
    cfg.obs.accounting = true;
    const Program prog = workloads::build("gzip");
    CtcpSimulator sim(cfg, prog);
    return sim.run();
}

TEST(TopologyDifferential, CrossbarMatchesUnboundedBus)
{
    // A crossbar with hop latency L is a bus with broadcast latency L
    // and unlimited bandwidth: identical distance matrices (all ones)
    // and identical effective operand readiness (completeAt + L), so
    // the runs must be byte-identical — accounting included.
    SimConfig crossbar = baseConfig();
    crossbar.cluster.topology = Topology::Crossbar;

    SimConfig bus = baseConfig();
    bus.cluster.topology = Topology::Bus;
    bus.cluster.busLatency = bus.cluster.hopLatency;
    bus.cluster.busBandwidth = 1u << 20;

    for (const AssignStrategy s :
         {AssignStrategy::BaseSlotOrder, AssignStrategy::Fdrt}) {
        const SimResult a = runConfig(crossbar, s);
        const SimResult b = runConfig(bus, s);
        EXPECT_EQ(a.toJson(false, true), b.toJson(false, true))
            << assignStrategyName(s);
    }
}

TEST(TopologyDifferential, TwoClusterRingMatchesLinearChain)
{
    // With two clusters the ring's wraparound link IS the chain link:
    // min(|0-1|, 2-|0-1|) == 1 either way.
    SimConfig linear = baseConfig();
    applyMachineScale(linear, 2, 4);

    SimConfig ring = linear;
    ring.cluster.topology = Topology::Ring;

    const SimResult a = runConfig(linear, AssignStrategy::Fdrt);
    const SimResult b = runConfig(ring, AssignStrategy::Fdrt);
    EXPECT_EQ(a.toJson(false, true), b.toJson(false, true));
}

TEST(TopologyDifferential, OneGroupHierarchyMatchesCrossbar)
{
    // When every cluster shares one group, the hierarchy never pays
    // the group link: all remote pairs are one intra-group hop, which
    // is exactly the crossbar (the group latency must be dead).
    SimConfig crossbar = baseConfig();
    crossbar.cluster.topology = Topology::Crossbar;

    SimConfig hier = baseConfig();
    hier.cluster.topology = Topology::Hierarchical;
    hier.cluster.hierGroupSize = 8;       // >= numClusters: one group
    hier.cluster.hierGroupLatency = 99;   // must never be charged

    const SimResult a = runConfig(crossbar, AssignStrategy::Fdrt);
    const SimResult b = runConfig(hier, AssignStrategy::Fdrt);
    EXPECT_EQ(a.toJson(false, true), b.toJson(false, true));
}

} // namespace
} // namespace ctcp
