/**
 * @file
 * Campaign hardening tests: journal record round-trips, crash/resume
 * byte-identity of the aggregated report, partial-record tolerance,
 * the bounded-retry policy with its category gate, and distinct
 * per-job file stems for colliding labels.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "campaign/journal.hh"
#include "common/sim_error.hh"
#include "config/presets.hh"
#include "prog/builder.hh"
#include "verify/fault.hh"

namespace ctcp {
namespace {

SimConfig
quickConfig(std::uint64_t budget = 20'000)
{
    SimConfig cfg = baseConfig();
    cfg.instructionLimit = budget;
    return cfg;
}

Program
tinyProgram()
{
    ProgramBuilder b("tiny");
    b.movi(intReg(1), 5000);
    b.label("top");
    b.addi(intReg(2), intReg(2), 1);
    b.addi(intReg(1), intReg(1), -1);
    b.bne(intReg(1), zeroReg, "top");
    b.halt();
    return b.build();
}

std::string
tempPath(const char *name)
{
    const std::string path = std::string(::testing::TempDir()) + name;
    std::remove(path.c_str());
    return path;
}

std::string
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return {};
    std::string out;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

campaign::JobOutcome
sampleOkOutcome()
{
    campaign::JobOutcome out;
    out.label = "gzip/fdrt";
    out.benchmark = "gzip";
    out.status = campaign::JobStatus::Ok;
    out.attempts = 2;
    out.result.benchmark = "gzip";
    out.result.strategy = "fdrt";
    out.result.cycles = 1234567;
    out.result.instructions = 2000000;
    out.result.pctFromTraceCache = 100.0 / 3.0;
    out.result.meanFwdDistance = 1.0 / 7.0;
    out.result.bpredAccuracy = 0.1 + 0.2; // famously not 0.3
    out.result.mispredicts = 4242;
    out.result.hostSeconds = 0.25;
    out.result.statsText =
        "line one\nline \"two\"\twith tab\nand a , comma\n";
    out.result.metrics["forward.total"] = 1.0 / 3.0;
    out.result.metrics["host.seconds"] = 0.25;
    return out;
}

TEST(JournalRecord, OkOutcomeRoundTripsExactly)
{
    const campaign::JobOutcome out = sampleOkOutcome();
    const std::string line = campaign::encodeJournalRecord(7, out);
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.back(), '\n');
    EXPECT_EQ(line.find('\n'), line.size() - 1) << "must be one line";

    campaign::JournalRecord rec;
    ASSERT_TRUE(campaign::decodeJournalRecord(
        line.substr(0, line.size() - 1), rec));
    EXPECT_EQ(rec.index, 7u);
    EXPECT_EQ(rec.outcome.label, out.label);
    EXPECT_EQ(rec.outcome.attempts, 2u);
    ASSERT_TRUE(rec.outcome.ok());
    // Exact double round-trip (%.17g): the replayed result serializes
    // to the same bytes, which is what resume byte-identity rests on.
    EXPECT_EQ(rec.outcome.result.toJson(true), out.result.toJson(true));
    EXPECT_EQ(rec.outcome.result.statsText, out.result.statsText);
    EXPECT_EQ(rec.outcome.result.cycles, out.result.cycles);
    EXPECT_EQ(rec.outcome.result.mispredicts, out.result.mispredicts);

    // Re-encoding the decoded record reproduces the original line.
    EXPECT_EQ(campaign::encodeJournalRecord(7, rec.outcome), line);
}

TEST(JournalRecord, FailedOutcomeRoundTrips)
{
    campaign::JobOutcome out;
    out.label = "bad job, with \"quotes\"";
    out.benchmark = "mcf";
    out.status = campaign::JobStatus::Failed;
    out.category = ErrorCategory::Timeout;
    out.attempts = 3;
    out.error = "deadline of 0.5s exceeded\nafter 3 tries";

    campaign::JournalRecord rec;
    const std::string line = campaign::encodeJournalRecord(0, out);
    ASSERT_TRUE(campaign::decodeJournalRecord(
        line.substr(0, line.size() - 1), rec));
    EXPECT_FALSE(rec.outcome.ok());
    EXPECT_EQ(rec.outcome.category, ErrorCategory::Timeout);
    EXPECT_EQ(rec.outcome.attempts, 3u);
    EXPECT_EQ(rec.outcome.error, out.error);
    EXPECT_EQ(rec.outcome.label, out.label);
}

TEST(JournalRecord, TruncatedLinesAreRejected)
{
    const std::string line =
        campaign::encodeJournalRecord(3, sampleOkOutcome());
    campaign::JournalRecord rec;
    for (std::size_t cut : {std::size_t(1), line.size() / 2,
                            line.size() - 2})
        EXPECT_FALSE(campaign::decodeJournalRecord(
            line.substr(0, cut), rec))
            << "accepted a record cut to " << cut << " bytes";
    EXPECT_FALSE(campaign::decodeJournalRecord("not json at all", rec));
    EXPECT_FALSE(campaign::decodeJournalRecord("", rec));
}

TEST(Journal, LoadToleratesCrashMidAppend)
{
    const std::string path = tempPath("ctcp_journal_truncated.jsonl");
    {
        campaign::JournalWriter writer(path);
        writer.append(0, sampleOkOutcome());
        writer.append(1, sampleOkOutcome());
    }
    const std::size_t full = readFile(path).size();
    // Chop into the middle of the second record, as a kill -9 between
    // write() and the rename-less append boundary would.
    ASSERT_TRUE(verify::FaultInjector::truncateFileTail(path, 25));
    ASSERT_EQ(readFile(path).size(), full - 25);

    const std::vector<campaign::JournalRecord> records =
        campaign::loadJournal(path);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].index, 0u);

    // Appending after a truncated load keeps working (resume path).
    campaign::JournalWriter writer(path);
    std::remove(path.c_str());
}

TEST(Journal, MissingFileIsAFreshCampaign)
{
    EXPECT_TRUE(campaign::loadJournal(
                    tempPath("ctcp_journal_nonexistent.jsonl"))
                    .empty());
}

namespace {

void
writeBytes(const std::string &path, const std::string &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
}

} // namespace

TEST(JournalTail, TornLineAtExactPageBoundaryIsNotConsumed)
{
    // Whole lines totalling exactly one 4096-byte I/O page, then a
    // torn fragment starting precisely at the boundary — the layout a
    // crash mid-append leaves when the page before it was flushed.
    const std::string path = tempPath("ctcp_tail_page.jsonl");
    std::string page(4095, 'x');
    page += '\n';
    ASSERT_EQ(page.size(), 4096u);
    writeBytes(path, page + "{\"torn");

    std::uint64_t next = 0;
    EXPECT_EQ(campaign::readJournalTail(path, 0, next), page);
    EXPECT_EQ(next, 4096u);
    // Re-polling from the boundary: no whole line yet, no progress.
    EXPECT_EQ(campaign::readJournalTail(path, 4096, next), "");
    EXPECT_EQ(next, 4096u);

    // Once the append completes, the same offset serves the record.
    writeBytes(path, page + "{\"torn\":1}\n");
    EXPECT_EQ(campaign::readJournalTail(path, 4096, next),
              "{\"torn\":1}\n");
    EXPECT_EQ(next, 4096u + 11u);
    std::remove(path.c_str());
}

TEST(JournalTail, OffsetAtOrPastEndYieldsEmptyWithoutAdvancing)
{
    const std::string path = tempPath("ctcp_tail_end.jsonl");
    const std::string line =
        campaign::encodeJournalRecord(0, sampleOkOutcome());
    writeBytes(path, line);

    std::uint64_t next = 0;
    EXPECT_EQ(campaign::readJournalTail(path, line.size(), next), "");
    EXPECT_EQ(next, line.size());
    EXPECT_EQ(campaign::readJournalTail(path, line.size() + 100, next),
              "");
    EXPECT_EQ(next, line.size() + 100);
    std::remove(path.c_str());
}

TEST(JournalTail, RereadingAnOffsetIsIdempotent)
{
    // Shard failover makes the coordinator re-poll offsets it already
    // consumed on a fresh connection; the stream must be stable.
    const std::string path = tempPath("ctcp_tail_reread.jsonl");
    {
        campaign::JournalWriter writer(path);
        writer.append(0, sampleOkOutcome());
        writer.append(1, sampleOkOutcome());
    }
    std::uint64_t next_a = 0, next_b = 0;
    const std::string a = campaign::readJournalTail(path, 0, next_a);
    const std::string b = campaign::readJournalTail(path, 0, next_b);
    EXPECT_EQ(a, b);
    EXPECT_EQ(next_a, next_b);
    ASSERT_FALSE(a.empty());

    // A mid-stream offset resumes cleanly at a record boundary.
    const std::size_t first = a.find('\n') + 1;
    std::uint64_t next_c = 0;
    EXPECT_EQ(campaign::readJournalTail(path, first, next_c),
              a.substr(first));
    EXPECT_EQ(next_c, next_a);
    std::remove(path.c_str());
}

TEST(CampaignJournal, ResumeSkipsCompletedJobs)
{
    const std::string path = tempPath("ctcp_journal_resume.jsonl");
    std::atomic<int> builds{0};
    auto makeJobs = [&] {
        std::vector<campaign::Job> jobs;
        for (const char *label : {"tiny/a", "tiny/b", "tiny/c"}) {
            campaign::Job job;
            job.label = label;
            job.benchmark = "tiny";
            job.config = quickConfig(0);
            job.builder = [&builds] {
                ++builds;
                return tinyProgram();
            };
            jobs.push_back(job);
        }
        return jobs;
    };

    campaign::Options options;
    options.jobs = 1;
    options.journalPath = path;
    const campaign::Report first =
        campaign::runCampaign(makeJobs(), options);
    ASSERT_EQ(first.failed(), 0u);
    EXPECT_EQ(builds.load(), 3);

    // Second run: every job replays from the journal, none re-runs,
    // and the report is byte-identical.
    const campaign::Report second =
        campaign::runCampaign(makeJobs(), options);
    EXPECT_EQ(builds.load(), 3) << "a completed job was re-run";
    EXPECT_EQ(first.toJson(), second.toJson());
    EXPECT_EQ(first.toCsv(), second.toCsv());
    std::remove(path.c_str());
}

TEST(CampaignJournal, KilledCampaignResumesByteIdentical)
{
    // Reference: the uninterrupted campaign, no journal involved.
    const std::vector<campaign::Job> jobs = {
        campaign::makeJob("gzip/base", "gzip", quickConfig()),
        campaign::makeJob("gzip/fdrt", "gzip", [] {
            SimConfig cfg = quickConfig();
            cfg.assign.strategy = AssignStrategy::Fdrt;
            return cfg;
        }()),
        campaign::makeJob("twolf/base", "twolf", quickConfig()),
        campaign::makeJob("twolf/fdrt", "twolf", [] {
            SimConfig cfg = quickConfig();
            cfg.assign.strategy = AssignStrategy::Fdrt;
            return cfg;
        }()),
    };
    const campaign::Report fresh = campaign::runCampaign(jobs);
    ASSERT_EQ(fresh.failed(), 0u);

    // Build the journal a killed run would have left behind: the
    // first two finished records plus a partial third, cut mid-line.
    const std::string full = tempPath("ctcp_journal_kill_full.jsonl");
    {
        campaign::Options options;
        options.jobs = 1;
        options.journalPath = full;
        campaign::runCampaign(jobs, options);
    }
    std::vector<std::string> lines;
    {
        const std::string text = readFile(full);
        std::size_t start = 0;
        while (start < text.size()) {
            const std::size_t end = text.find('\n', start);
            lines.push_back(text.substr(start, end - start));
            start = end + 1;
        }
    }
    ASSERT_EQ(lines.size(), 4u);

    for (unsigned workers : {1u, 4u}) {
        const std::string partial =
            tempPath("ctcp_journal_kill_partial.jsonl");
        {
            std::FILE *f = std::fopen(partial.c_str(), "wb");
            ASSERT_NE(f, nullptr);
            std::fprintf(f, "%s\n%s\n%s", lines[0].c_str(),
                         lines[1].c_str(),
                         lines[2].substr(0, 40).c_str());
            std::fclose(f);
        }
        campaign::Options options;
        options.jobs = workers;
        options.journalPath = partial;
        const campaign::Report resumed =
            campaign::runCampaign(jobs, options);
        EXPECT_EQ(fresh.toJson(), resumed.toJson())
            << "resume with " << workers << " workers diverged";
        EXPECT_EQ(fresh.toCsv(), resumed.toCsv());
        std::remove(partial.c_str());
    }
    std::remove(full.c_str());
}

TEST(CampaignJournal, AdaptiveTopologyJobsResumeByteIdentical)
{
    // The journal replays the adaptive strategy's extra metrics
    // (adaptive.switches, adaptive.intervals.*) and the topology
    // variants' accounting exactly; a resume after a mid-campaign kill
    // must reproduce the uninterrupted report byte for byte.
    const std::vector<campaign::Job> jobs = [] {
        std::vector<campaign::Job> out;
        for (const char *topo : {"linear", "ring", "crossbar", "bus"}) {
            SimConfig cfg = quickConfig(15'000);
            cfg.assign.strategy = AssignStrategy::Adaptive;
            Topology parsed = Topology::LinearChain;
            EXPECT_TRUE(parseTopology(topo, parsed));
            cfg.cluster.topology = parsed;
            out.push_back(campaign::makeJob(
                std::string("gzip/adaptive/") + topo, "gzip", cfg));
        }
        return out;
    }();
    const campaign::Report fresh = campaign::runCampaign(jobs);
    ASSERT_EQ(fresh.failed(), 0u);

    const std::string full = tempPath("ctcp_journal_adaptive.jsonl");
    {
        campaign::Options options;
        options.jobs = 1;
        options.journalPath = full;
        campaign::runCampaign(jobs, options);
    }
    const std::string text = readFile(full);
    // Keep the first two records plus a torn third, as a kill mid-write
    // would leave behind.
    std::size_t cut = text.find('\n');
    ASSERT_NE(cut, std::string::npos);
    cut = text.find('\n', cut + 1);
    ASSERT_NE(cut, std::string::npos);
    const std::string partial =
        tempPath("ctcp_journal_adaptive_partial.jsonl");
    {
        std::FILE *f = std::fopen(partial.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        const std::string torn = text.substr(0, cut + 41);
        std::fwrite(torn.data(), 1, torn.size(), f);
        std::fclose(f);
    }
    campaign::Options options;
    options.jobs = 4;
    options.journalPath = partial;
    const campaign::Report resumed = campaign::runCampaign(jobs, options);
    EXPECT_EQ(fresh.toJson(), resumed.toJson());
    EXPECT_EQ(fresh.toCsv(), resumed.toCsv());
    std::remove(partial.c_str());
    std::remove(full.c_str());
}

TEST(CampaignJournal, MismatchedRecordsAreIgnored)
{
    const std::string path = tempPath("ctcp_journal_stale.jsonl");
    {
        campaign::JournalWriter writer(path);
        campaign::JobOutcome stale = sampleOkOutcome();
        stale.label = "job/from/another/campaign";
        writer.append(0, stale);
        writer.append(9, sampleOkOutcome()); // index out of range
    }
    std::atomic<int> builds{0};
    campaign::Job job;
    job.label = "tiny/real";
    job.benchmark = "tiny";
    job.config = quickConfig(0);
    job.builder = [&builds] {
        ++builds;
        return tinyProgram();
    };
    campaign::Options options;
    options.journalPath = path;
    const campaign::Report report = campaign::runCampaign({job}, options);
    EXPECT_EQ(builds.load(), 1) << "stale record replayed";
    EXPECT_TRUE(report.jobs[0].ok());
    std::remove(path.c_str());
}

TEST(CampaignRetry, FlakyBuilderSucceedsOnSecondAttempt)
{
    campaign::Job job;
    job.label = "flaky";
    job.benchmark = "tiny";
    job.config = quickConfig(0);
    job.builder = verify::flakyBuilder(1, tinyProgram);

    campaign::Options options;
    options.maxAttempts = 2;
    const campaign::Report report = campaign::runCampaign({job}, options);
    ASSERT_EQ(report.failed(), 0u);
    EXPECT_EQ(report.jobs[0].attempts, 2u);
    // Retried successes are visible in the export; first-try successes
    // keep the original byte format (asserted by the golden test).
    EXPECT_NE(report.toJson().find("\"attempts\": 2"),
              std::string::npos);
}

TEST(CampaignRetry, ExhaustedRetriesReportWorkloadError)
{
    campaign::Job job;
    job.label = "hopeless";
    job.benchmark = "tiny";
    job.config = quickConfig(0);
    job.builder = verify::flakyBuilder(99, tinyProgram);

    campaign::Options options;
    options.maxAttempts = 3;
    const campaign::Report report = campaign::runCampaign({job}, options);
    ASSERT_EQ(report.failed(), 1u);
    EXPECT_EQ(report.jobs[0].attempts, 3u);
    EXPECT_EQ(report.jobs[0].category, ErrorCategory::Workload);
    EXPECT_NE(report.jobs[0].error.find("injected builder fault"),
              std::string::npos);
    EXPECT_NE(report.toJson().find("\"category\": \"workload\""),
              std::string::npos);
}

TEST(CampaignRetry, NonRetryableCategoriesFailImmediately)
{
    std::atomic<int> calls{0};
    campaign::Job job;
    job.label = "misconfigured";
    job.benchmark = "tiny";
    job.config = quickConfig(0);
    job.builder = [&calls]() -> Program {
        ++calls;
        throw SimError(ErrorCategory::Config, "bad knob");
    };

    campaign::Options options;
    options.maxAttempts = 5;
    const campaign::Report report = campaign::runCampaign({job}, options);
    ASSERT_EQ(report.failed(), 1u);
    EXPECT_EQ(calls.load(), 1) << "config error was retried";
    EXPECT_EQ(report.jobs[0].attempts, 1u);
    EXPECT_EQ(report.jobs[0].category, ErrorCategory::Config);
}

TEST(CampaignRetry, JobDeadlineProducesTimeoutCategory)
{
    campaign::Job job = campaign::makeJob(
        "slow", "gzip", quickConfig(2'000'000));
    campaign::Options options;
    options.jobDeadlineSeconds = 1e-6;
    options.maxAttempts = 2; // timeouts are retryable; both must expire
    const campaign::Report report = campaign::runCampaign({job}, options);
    ASSERT_EQ(report.failed(), 1u);
    EXPECT_EQ(report.jobs[0].category, ErrorCategory::Timeout);
    EXPECT_EQ(report.jobs[0].attempts, 2u);
}

TEST(CampaignStems, CollidingSanitizedLabelsGetDistinctStems)
{
    // Regression: "gzip/fdrt" and "gzip_fdrt" sanitize identically, so
    // label-keyed telemetry files used to overwrite each other.
    EXPECT_EQ(campaign::sanitizeLabel("gzip/fdrt"),
              campaign::sanitizeLabel("gzip_fdrt"));
    EXPECT_NE(campaign::jobFileStem("gzip/fdrt", 0),
              campaign::jobFileStem("gzip_fdrt", 1));
    EXPECT_EQ(campaign::jobFileStem("gzip/fdrt", 0), "gzip_fdrt-0");
}

TEST(CampaignStems, CollidingLabelsWriteDistinctTraceFiles)
{
    const std::string dir = ::testing::TempDir();
    const std::vector<campaign::Job> jobs = {
        campaign::makeJob("stem/x", "gzip", quickConfig(5'000)),
        campaign::makeJob("stem_x", "gzip", quickConfig(5'000)),
    };
    campaign::Options options;
    options.jobs = 1;
    options.traceEventsDir = dir;
    options.traceFilter = "retire";
    const campaign::Report report = campaign::runCampaign(jobs, options);
    ASSERT_EQ(report.failed(), 0u);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const std::string path = dir +
            campaign::jobFileStem(jobs[i].label, i) + ".trace.json";
        EXPECT_FALSE(readFile(path).empty()) << path;
        std::remove(path.c_str());
    }
}

TEST(CampaignJournal, MixedJobsUnderContention)
{
    // Thread-safety workout (run under TSan in CI): 8 workers racing
    // over journal appends, retries, and failures — and the parallel
    // report must still match a serial run byte for byte.
    auto makeJobs = [] {
        std::vector<campaign::Job> jobs;
        for (int i = 0; i < 4; ++i) {
            campaign::Job job;
            job.label = "tiny/" + std::to_string(i);
            job.benchmark = "tiny";
            job.config = quickConfig(0);
            job.builder = tinyProgram;
            jobs.push_back(job);
        }
        campaign::Job flaky;
        flaky.label = "flaky";
        flaky.benchmark = "tiny";
        flaky.config = quickConfig(0);
        flaky.builder = verify::flakyBuilder(1, tinyProgram);
        jobs.push_back(flaky);
        campaign::Job bomb;
        bomb.label = "bomb";
        bomb.benchmark = "tiny";
        bomb.config = quickConfig(0);
        bomb.builder = []() -> Program {
            throw std::runtime_error("always fails");
        };
        jobs.push_back(bomb);
        jobs.push_back(campaign::makeJob("gzip", "gzip",
                                         quickConfig(5'000)));
        jobs.push_back(campaign::makeJob("twolf", "twolf",
                                         quickConfig(5'000)));
        return jobs;
    };

    campaign::Options serial;
    serial.jobs = 1;
    serial.maxAttempts = 2;
    const campaign::Report expected =
        campaign::runCampaign(makeJobs(), serial);

    const std::string path = tempPath("ctcp_journal_contention.jsonl");
    campaign::Options parallel;
    parallel.jobs = 8;
    parallel.maxAttempts = 2;
    parallel.journalPath = path;
    const campaign::Report report =
        campaign::runCampaign(makeJobs(), parallel);

    EXPECT_EQ(report.failed(), 1u);
    EXPECT_EQ(expected.toJson(), report.toJson());
    EXPECT_EQ(campaign::loadJournal(path).size(), makeJobs().size());
    std::remove(path.c_str());
}

} // namespace
} // namespace ctcp
