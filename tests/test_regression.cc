/**
 * @file
 * Golden-value regression tests.
 *
 * The simulator is fully deterministic, so exact cycle counts for a
 * fixed (benchmark, strategy, budget) triple are stable across runs
 * and hosts. These tests pin a sample of them so that unintended
 * timing-model changes are caught immediately.
 *
 * If you change the timing model ON PURPOSE, re-derive the constants:
 * run each configuration below and paste the new numbers, noting the
 * model change in your commit message.
 */

#include <gtest/gtest.h>

#include "config/presets.hh"
#include "core/simulator.hh"
#include "workload/workload.hh"

namespace ctcp {
namespace {

struct Golden
{
    const char *benchmark;
    int strategy;            // AssignStrategy enumerator value
    std::uint64_t cycles;
    std::uint64_t instructions;
};

// Baseline machine, 50k-instruction budget, default knobs.
constexpr Golden goldens[] = {
    {"gzip", 0, 45474ull, 50002ull},
    {"gzip", 1, 36248ull, 50002ull},
    {"gzip", 2, 34538ull, 50004ull},
    {"gzip", 3, 36972ull, 50002ull},
    {"twolf", 0, 57932ull, 50000ull},
    {"twolf", 1, 51154ull, 50000ull},
    {"twolf", 2, 52381ull, 50001ull},
    {"twolf", 3, 51704ull, 50005ull},
    {"mcf", 0, 33650ull, 50005ull},
    {"mcf", 1, 23740ull, 50005ull},
    {"mcf", 2, 24161ull, 50006ull},
    {"mcf", 3, 26694ull, 50003ull},
    {"adpcm_enc", 0, 77838ull, 50007ull},
    {"adpcm_enc", 1, 77547ull, 50007ull},
    {"adpcm_enc", 2, 82534ull, 50005ull},
    {"adpcm_enc", 3, 89840ull, 50007ull},
};

class GoldenRegression : public ::testing::TestWithParam<Golden>
{};

TEST_P(GoldenRegression, ExactCycleCount)
{
    const Golden &g = GetParam();
    SimConfig cfg = baseConfig();
    cfg.assign.strategy = static_cast<AssignStrategy>(g.strategy);
    cfg.instructionLimit = 50'000;
    Program p = workloads::build(g.benchmark);
    const SimResult r = CtcpSimulator(cfg, p).run();
    EXPECT_EQ(r.cycles, g.cycles);
    EXPECT_EQ(r.instructions, g.instructions);
}

INSTANTIATE_TEST_SUITE_P(
    Baseline, GoldenRegression, ::testing::ValuesIn(goldens),
    [](const ::testing::TestParamInfo<Golden> &info) {
        std::string name = std::string(info.param.benchmark) + "_" +
            assignStrategyName(
                static_cast<AssignStrategy>(info.param.strategy));
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

} // namespace
} // namespace ctcp
