/**
 * @file
 * Service-layer unit tests, socket-free by design: HTTP parsing and
 * serialization round-trips, the journal-tail reader behind
 * GET /v1/runs/<id>/events, the workload setup cache, the persistent
 * worker pool, the campaign engine's cancellation/observer hooks, and
 * ServiceServer::handle() routing (a pure request -> response
 * function). The daemon's process-level behaviour lives in
 * test_service_e2e.cc.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "campaign/campaign.hh"
#include "campaign/journal.hh"
#include "campaign/persistent_pool.hh"
#include "config/presets.hh"
#include "service/http.hh"
#include "service/registry.hh"
#include "service/server.hh"
#include "service/workload_cache.hh"

namespace ctcp {
namespace {

SimConfig
quickConfig(std::uint64_t budget = 20'000)
{
    SimConfig cfg = baseConfig();
    cfg.instructionLimit = budget;
    return cfg;
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

// ---- HTTP parsing ------------------------------------------------------

TEST(Http, ParsesRequestLineQueryAndHeaders)
{
    service::HttpRequest req;
    std::string error;
    ASSERT_TRUE(service::parseRequest(
        "GET /v1/runs/r0001/events?from=120&wait=2.5 HTTP/1.1\r\n"
        "Host: ctcpd\r\n"
        "X-Custom: value\r\n"
        "\r\n",
        req, error))
        << error;
    EXPECT_EQ(req.method, "GET");
    EXPECT_EQ(req.path, "/v1/runs/r0001/events");
    EXPECT_EQ(req.queryParam("from"), "120");
    EXPECT_EQ(req.queryParam("wait"), "2.5");
    EXPECT_EQ(req.queryParam("absent", "fallback"), "fallback");
    // Header names are matched case-insensitively.
    EXPECT_EQ(req.header("x-custom"), "value");
    EXPECT_EQ(req.header("X-CUSTOM"), "value");
    EXPECT_TRUE(req.body.empty());
}

TEST(Http, ParsesBodyByContentLength)
{
    service::HttpRequest req;
    std::string error;
    ASSERT_TRUE(service::parseRequest("POST /v1/runs HTTP/1.1\r\n"
                                      "Content-Length: 11\r\n"
                                      "\r\n"
                                      "bench=gzip;",
                                      req, error))
        << error;
    EXPECT_EQ(req.method, "POST");
    EXPECT_EQ(req.body, "bench=gzip;");
}

TEST(Http, DecodesPercentEscapesInTarget)
{
    service::HttpRequest req;
    std::string error;
    ASSERT_TRUE(service::parseRequest(
        "POST /v1/runs?spec=bench%3Dgzip%3Bbudget%3D1000 HTTP/1.1\r\n"
        "\r\n",
        req, error))
        << error;
    EXPECT_EQ(req.queryParam("spec"), "bench=gzip;budget=1000");
    EXPECT_EQ(service::percentDecode("a+b%20c%2f"), "a b c/");
}

TEST(Http, RejectsMalformedRequests)
{
    service::HttpRequest req;
    std::string error;
    EXPECT_FALSE(service::parseRequest("", req, error));
    EXPECT_FALSE(service::parseRequest("nonsense\r\n\r\n", req, error));
    // Body shorter than Content-Length is an error, not a prefix.
    EXPECT_FALSE(service::parseRequest("POST /x HTTP/1.1\r\n"
                                       "Content-Length: 50\r\n"
                                       "\r\n"
                                       "short",
                                       req, error));
    // Oversized declared body is rejected up front.
    EXPECT_FALSE(service::parseRequest(
        "POST /x HTTP/1.1\r\nContent-Length: " +
            std::to_string(service::maxBodyBytes + 1) + "\r\n\r\n",
        req, error));
}

TEST(Http, ResponseRoundTripsThroughClientParser)
{
    service::HttpResponse out;
    out.status = 201;
    out.contentType = "application/json";
    out.headers.push_back({"X-Ctcp-Next-Offset", "4096"});
    out.body = "{\"id\":\"r0001\"}\n";

    service::HttpResponse in;
    std::string error;
    ASSERT_TRUE(
        service::parseResponse(service::serializeResponse(out), in, error))
        << error;
    EXPECT_EQ(in.status, 201);
    EXPECT_EQ(in.body, out.body);
    // parseResponse lower-cases header names (shared parser with the
    // request side; header names are case-insensitive).
    bool found = false;
    for (const auto &h : in.headers)
        if (h.first == "x-ctcp-next-offset") {
            EXPECT_EQ(h.second, "4096");
            found = true;
        }
    EXPECT_TRUE(found);
}

TEST(Http, JsonEscapeHandlesControlCharacters)
{
    EXPECT_EQ(service::jsonEscape("plain"), "plain");
    EXPECT_EQ(service::jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

// ---- Journal tail reader (the /events wire format) ---------------------

TEST(JournalTail, ServesCompleteLinesAndNeverTornTails)
{
    const std::string path = tempPath("ctcp_tail.jsonl");
    std::remove(path.c_str());
    {
        std::ofstream out(path, std::ios::binary);
        out << "{\"index\":0}\n{\"index\":1}\n{\"index\":2}"; // torn
    }
    std::uint64_t next = 0;
    const std::string first = campaign::readJournalTail(path, 0, next);
    // Only the two complete records come back; the torn third record
    // is invisible until its newline lands.
    EXPECT_EQ(first, "{\"index\":0}\n{\"index\":1}\n");
    EXPECT_EQ(next, first.size());

    // Polling from the returned offset with no new bytes yields
    // nothing and does not advance.
    std::uint64_t again = 0;
    EXPECT_EQ(campaign::readJournalTail(path, next, again), "");
    EXPECT_EQ(again, next);

    // Completing the torn record makes exactly it available.
    {
        std::ofstream out(path, std::ios::binary | std::ios::app);
        out << "\n";
    }
    std::uint64_t after = 0;
    EXPECT_EQ(campaign::readJournalTail(path, next, after),
              "{\"index\":2}\n");
    EXPECT_EQ(after, next + std::string("{\"index\":2}\n").size());
    std::remove(path.c_str());
}

TEST(JournalTail, MissingFileIsEmptyNotFatal)
{
    std::uint64_t next = 77;
    EXPECT_EQ(campaign::readJournalTail(tempPath("ctcp_no_such.jsonl"),
                                        77, next),
              "");
    EXPECT_EQ(next, 77u);
}

// ---- Workload cache ----------------------------------------------------

TEST(WorkloadCache, HitsMissesAndKeyedByBudget)
{
    service::WorkloadCache cache(8);
    const auto a = cache.get("gzip", 10'000);
    const auto b = cache.get("gzip", 10'000);
    EXPECT_EQ(a.get(), b.get()); // same cached image
    // A different instruction budget is a different key: builders
    // honour instructionLimit, so images are not interchangeable.
    const auto c = cache.get("gzip", 20'000);
    EXPECT_NE(a.get(), c.get());

    const service::WorkloadCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_EQ(stats.evictions, 0u);
}

TEST(WorkloadCache, EvictsLeastRecentlyUsed)
{
    service::WorkloadCache cache(2);
    cache.get("gzip", 1'000);
    cache.get("gzip", 2'000);
    cache.get("gzip", 1'000);  // touch: 1'000 is now most recent
    cache.get("gzip", 3'000);  // evicts 2'000
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.stats().entries, 2u);

    cache.get("gzip", 1'000); // still resident
    EXPECT_EQ(cache.stats().hits, 2u);
    cache.get("gzip", 2'000); // was evicted: a miss rebuilds it
    EXPECT_EQ(cache.stats().misses, 4u);
}

TEST(WorkloadCache, UnknownBenchmarkMatchesCampaignError)
{
    // The cache must fail exactly like campaign::makeJob's builder so
    // a daemon-side failure report is byte-identical to the batch one.
    service::WorkloadCache cache(4);
    try {
        cache.get("no_such_bench", 1'000);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_EQ(std::string(e.what()),
                  "unknown benchmark 'no_such_bench'");
    }
}

// ---- Persistent pool ---------------------------------------------------

TEST(PersistentPool, RunsEveryJobExactlyOnce)
{
    constexpr std::size_t njobs = 64;
    std::vector<std::atomic<int>> hits(njobs);
    for (auto &h : hits)
        h = 0;
    campaign::PersistentPool pool(4);
    pool.run(njobs, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < njobs; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "job " << i;
}

TEST(PersistentPool, ConcurrentBatchesShareTheWorkers)
{
    // The daemon's shape: several runner threads blocking in run()
    // while their jobs interleave on one worker set. Every batch must
    // see all of its own jobs and only its own jobs.
    campaign::PersistentPool pool(3);
    constexpr std::size_t batches = 4;
    constexpr std::size_t per_batch = 32;
    std::vector<std::vector<std::atomic<int>>> hits(batches);
    for (auto &batch : hits) {
        std::vector<std::atomic<int>> fresh(per_batch);
        batch.swap(fresh);
        for (auto &h : batch)
            h = 0;
    }
    std::vector<std::thread> submitters;
    for (std::size_t b = 0; b < batches; ++b)
        submitters.emplace_back([&, b] {
            pool.run(per_batch,
                     [&, b](std::size_t i) { ++hits[b][i]; });
        });
    for (auto &t : submitters)
        t.join();
    for (std::size_t b = 0; b < batches; ++b)
        for (std::size_t i = 0; i < per_batch; ++i)
            EXPECT_EQ(hits[b][i].load(), 1)
                << "batch " << b << " job " << i;
}

TEST(PersistentPool, RunAfterShutdownFallsBackToInline)
{
    campaign::PersistentPool pool(2);
    pool.shutdown();
    std::vector<std::size_t> order;
    pool.run(4, [&](std::size_t i) { order.push_back(i); });
    ASSERT_EQ(order.size(), 4u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(PersistentPool, CampaignOnExternalPoolMatchesPrivatePool)
{
    // Options::pool must not change any outcome: same jobs, same
    // aggregated JSON, whether the engine spins its own workers or
    // borrows the daemon's.
    const std::vector<campaign::Job> jobs = {
        campaign::makeJob("a", "gzip", quickConfig(10'000)),
        campaign::makeJob("b", "adpcm_enc", quickConfig(10'000)),
    };
    campaign::Options pooled;
    campaign::PersistentPool pool(2);
    pooled.pool = &pool;
    const campaign::Report on_pool = campaign::runCampaign(jobs, pooled);

    campaign::Options priv;
    priv.jobs = 2;
    const campaign::Report on_private = campaign::runCampaign(jobs, priv);
    EXPECT_EQ(on_pool.toJson(), on_private.toJson());
}

// ---- Campaign cancellation + observer hooks ----------------------------

TEST(Campaign, CancelledJobsAreNotJournaled)
{
    const std::string journal = tempPath("ctcp_cancel.jsonl");
    std::remove(journal.c_str());

    const std::vector<campaign::Job> jobs = {
        campaign::makeJob("a", "gzip", quickConfig(5'000)),
        campaign::makeJob("b", "gzip", quickConfig(5'000)),
    };
    campaign::Options options;
    options.jobs = 1;
    options.journalPath = journal;
    options.cancelRequested = [] { return true; }; // cancel up front
    const campaign::Report report = campaign::runCampaign(jobs, options);

    ASSERT_EQ(report.jobs.size(), 2u);
    for (const campaign::JobOutcome &out : report.jobs) {
        EXPECT_EQ(out.status, campaign::JobStatus::Failed);
        EXPECT_EQ(out.category, ErrorCategory::Cancelled);
    }
    // The checkpoint contract: cancelled jobs leave no journal record,
    // so a resume re-runs exactly them.
    EXPECT_EQ(slurp(journal), "");

    campaign::Options resume;
    resume.jobs = 1;
    resume.journalPath = journal;
    const campaign::Report rerun = campaign::runCampaign(jobs, resume);
    EXPECT_EQ(rerun.failed(), 0u);
    std::remove(journal.c_str());
}

TEST(Campaign, CancelledCategoryIsNotRetryable)
{
    EXPECT_FALSE(errorCategoryRetryable(ErrorCategory::Cancelled));
    EXPECT_EQ(std::string(errorCategoryName(ErrorCategory::Cancelled)),
              "cancelled");
    EXPECT_EQ(errorCategoryFromName("cancelled"),
              ErrorCategory::Cancelled);
}

TEST(Campaign, OnJobFinishedSeesEveryOutcomeWithItsIndex)
{
    const std::vector<campaign::Job> jobs = {
        campaign::makeJob("a", "gzip", quickConfig(5'000)),
        campaign::makeJob("b", "gzip", quickConfig(5'000)),
        campaign::makeJob("c", "gzip", quickConfig(5'000)),
    };
    std::mutex mutex;
    std::set<std::size_t> indices;
    std::size_t ok = 0;
    campaign::Options options;
    options.jobs = 2;
    options.onJobFinished = [&](std::size_t index,
                                const campaign::JobOutcome &out) {
        std::lock_guard<std::mutex> lock(mutex);
        indices.insert(index);
        if (out.ok())
            ++ok;
    };
    campaign::runCampaign(jobs, options);
    EXPECT_EQ(indices, (std::set<std::size_t>{0, 1, 2}));
    EXPECT_EQ(ok, 3u);
}

TEST(Campaign, ProgressToStderrKeepsConcurrentLinesIntact)
{
    // Two threads log through progressToStderr at once (the daemon
    // runs concurrent campaigns over one stderr); every captured line
    // must come out whole, never interleaved mid-line.
    const std::string path = tempPath("ctcp_progress.txt");
    std::remove(path.c_str());

    ::fflush(stderr);
    const int saved = ::dup(2);
    ASSERT_GE(saved, 0);
    FILE *capture = std::fopen(path.c_str(), "wb");
    ASSERT_NE(capture, nullptr);
    ASSERT_GE(::dup2(::fileno(capture), 2), 0);

    constexpr int per_thread = 200;
    const std::string line_a(60, 'a');
    const std::string line_b(60, 'b');
    std::thread ta([&] {
        for (int i = 0; i < per_thread; ++i)
            campaign::progressToStderr(line_a);
    });
    std::thread tb([&] {
        for (int i = 0; i < per_thread; ++i)
            campaign::progressToStderr(line_b);
    });
    ta.join();
    tb.join();

    ::fflush(stderr);
    ::dup2(saved, 2);
    ::close(saved);
    std::fclose(capture);

    std::ifstream in(path);
    std::string line;
    int a = 0, b = 0;
    while (std::getline(in, line)) {
        if (line == line_a)
            ++a;
        else if (line == line_b)
            ++b;
        else
            ADD_FAILURE() << "interleaved line: " << line;
    }
    EXPECT_EQ(a, per_thread);
    EXPECT_EQ(b, per_thread);
    std::remove(path.c_str());
}

// ---- ServiceServer::handle routing -------------------------------------

class ServerRouting : public ::testing::Test
{
  protected:
    ServerRouting()
    {
        // A private state dir per fixture: run ids restart at r0001
        // for every registry, so a shared directory would replay one
        // test's journal into another's run.
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        const std::string tag = info ? info->name() : "unnamed";
        service::ServiceServer::Config config;
        config.socketPath = tempPath("ctcp_routing.sock");
        config.registry.stateDir =
            tempPath("ctcp_routing_state_" + tag);
        // ...and wipe leftovers from previous suite invocations, which
        // would otherwise resume into this registry.
        std::filesystem::remove_all(config.registry.stateDir);
        config.registry.workers = 2;
        config.maxWaitSeconds = 5.0;
        server_ = std::make_unique<service::ServiceServer>(
            std::move(config));
    }

    service::HttpResponse get(const std::string &target)
    {
        return call("GET", target, "");
    }

    service::HttpResponse post(const std::string &target,
                               const std::string &body)
    {
        return call("POST", target, body);
    }

    service::HttpResponse call(const std::string &method,
                               const std::string &target,
                               const std::string &body)
    {
        service::HttpRequest req;
        std::string error;
        const std::string raw = method + " " + target +
            " HTTP/1.1\r\nContent-Length: " +
            std::to_string(body.size()) + "\r\n\r\n" + body;
        EXPECT_TRUE(service::parseRequest(raw, req, error)) << error;
        return server_->handle(req);
    }

    /** Submit a spec and return the new run id. */
    std::string submit(const std::string &spec)
    {
        const service::HttpResponse resp = post("/v1/runs", spec);
        EXPECT_EQ(resp.status, 201) << resp.body;
        const std::string marker = "\"id\":\"";
        const std::size_t at = resp.body.find(marker);
        EXPECT_NE(at, std::string::npos) << resp.body;
        const std::size_t start = at + marker.size();
        return resp.body.substr(start,
                                resp.body.find('"', start) - start);
    }

    void waitDone(const std::string &id)
    {
        service::RunInfo info;
        ASSERT_TRUE(server_->registry().wait(id, 60.0, info));
        ASSERT_EQ(info.state, service::RunState::Done);
    }

    std::unique_ptr<service::ServiceServer> server_;
};

TEST_F(ServerRouting, PingAndStats)
{
    EXPECT_EQ(get("/v1/ping").status, 200);
    const service::HttpResponse stats = get("/v1/stats");
    EXPECT_EQ(stats.status, 200);
    EXPECT_NE(stats.body.find("\"workers\":2"), std::string::npos)
        << stats.body;
}

TEST_F(ServerRouting, UnknownRoutesAre404AndWrongMethods405)
{
    EXPECT_EQ(get("/v2/ping").status, 404);
    EXPECT_EQ(get("/v1/runs/r9999").status, 404);
    EXPECT_EQ(post("/v1/ping", "").status, 405);
    EXPECT_EQ(get("/v1/runs/r9999/cancel").status, 405);
}

TEST_F(ServerRouting, MalformedSpecIs400)
{
    const service::HttpResponse resp = post("/v1/runs", "what=ever");
    EXPECT_EQ(resp.status, 400);
    EXPECT_NE(resp.body.find("error"), std::string::npos);
}

TEST_F(ServerRouting, SubmitRunReportLifecycle)
{
    const std::string id =
        submit("bench=gzip;strategy=base;budget=5000");
    EXPECT_EQ(id.substr(0, 1), "r");

    // The report is a conflict until the run finishes...
    waitDone(id);
    // ...and afterwards both formats serve.
    const service::HttpResponse json =
        get("/v1/runs/" + id + "/report?format=json");
    EXPECT_EQ(json.status, 200);
    EXPECT_NE(json.body.find("\"campaign\""), std::string::npos);
    const service::HttpResponse csv =
        get("/v1/runs/" + id + "/report?format=csv");
    EXPECT_EQ(csv.status, 200);
    EXPECT_EQ(csv.contentType, "text/csv");

    // Status snapshot and the run listing both know the run.
    const service::HttpResponse status = get("/v1/runs/" + id);
    EXPECT_EQ(status.status, 200);
    EXPECT_NE(status.body.find("\"state\":\"done\""),
              std::string::npos)
        << status.body;
    EXPECT_NE(get("/v1/runs").body.find("\"" + id + "\""),
              std::string::npos);

    // The event stream serves the journal bytes with paging headers.
    const service::HttpResponse events =
        get("/v1/runs/" + id + "/events?from=0");
    EXPECT_EQ(events.status, 200);
    EXPECT_NE(events.body.find("\"label\":\"gzip/base/base\""),
              std::string::npos);
    bool has_next = false;
    for (const auto &h : events.headers)
        if (h.first == "X-Ctcp-Next-Offset") {
            has_next = true;
            EXPECT_EQ(h.second, std::to_string(events.body.size()));
        }
    EXPECT_TRUE(has_next);

    // The live HTML report renders (content negotiation sanity).
    const service::HttpResponse html = get("/v1/runs/" + id + "/html");
    EXPECT_EQ(html.status, 200);
    EXPECT_EQ(html.contentType, "text/html; charset=utf-8");
    EXPECT_NE(html.body.find("<!DOCTYPE html>"), std::string::npos);
}

TEST_F(ServerRouting, ReportBeforeCompletionIs409)
{
    // A run that cannot finish quickly: rely on submitting and asking
    // immediately. Cancel afterwards so teardown stays fast.
    const std::string id =
        submit("bench=gzip;strategy=base,fdrt,friendly;budget=300000");
    const service::HttpResponse early =
        get("/v1/runs/" + id + "/report");
    // Either still running (409) or already done on a fast machine.
    EXPECT_TRUE(early.status == 409 || early.status == 200)
        << early.status;
    EXPECT_EQ(post("/v1/runs/" + id + "/cancel", "").status, 202);
    service::RunInfo info;
    ASSERT_TRUE(server_->registry().wait(id, 60.0, info));
    EXPECT_TRUE(service::runStateTerminal(info.state));
}

TEST_F(ServerRouting, SubmitOptionsFlowThroughQuery)
{
    const service::HttpResponse created =
        post("/v1/runs?accounting=1&max_attempts=3",
             "bench=gzip;strategy=base;budget=5000");
    ASSERT_EQ(created.status, 201) << created.body;
    const std::string marker = "\"id\":\"";
    const std::size_t at = created.body.find(marker);
    ASSERT_NE(at, std::string::npos) << created.body;
    const std::size_t start = at + marker.size();
    const std::string id = created.body.substr(
        start, created.body.find('"', start) - start);

    waitDone(id);
    const service::HttpResponse status = get("/v1/runs/" + id);
    EXPECT_NE(status.body.find("\"accounting\":true"),
              std::string::npos)
        << status.body;
    EXPECT_NE(status.body.find("\"maxAttempts\":3"), std::string::npos)
        << status.body;
    // An accounting run's report carries the accounting block.
    const service::HttpResponse json =
        get("/v1/runs/" + id + "/report");
    EXPECT_NE(json.body.find("\"accounting\""), std::string::npos);
}

// ---- /v1/metrics and trace correlation ---------------------------------

TEST(TraceId, IdsAreUniqueSixteenHexDigits)
{
    const std::string a = service::makeTraceId();
    const std::string b = service::makeTraceId();
    EXPECT_NE(a, b);
    for (const std::string &id : {a, b}) {
        ASSERT_EQ(id.size(), 16u) << id;
        for (const char c : id)
            EXPECT_TRUE((c >= '0' && c <= '9') ||
                        (c >= 'a' && c <= 'f'))
                << id;
    }
}

TEST_F(ServerRouting, MetricsExposeEveryFamilyOnAFreshServer)
{
    const service::HttpResponse resp = get("/v1/metrics");
    ASSERT_EQ(resp.status, 200);
    EXPECT_EQ(resp.contentType,
              "text/plain; version=0.0.4; charset=utf-8");
    for (const char *family :
         {"ctcpd_http_requests_total", "ctcpd_http_request_seconds",
          "ctcpd_http_response_bytes_total",
          "ctcpd_http_active_connections", "ctcpd_pool_workers",
          "ctcpd_pool_busy_workers", "ctcpd_pool_queue_depth",
          "ctcpd_pool_jobs_executed_total", "ctcpd_jobs_completed_total",
          "ctcpd_jobs_retried_total", "ctcpd_jobs_failed_total",
          "ctcpd_runs", "ctcpd_journal_bytes",
          "ctcpd_resumed_runs_total", "ctcpd_resume_replayed_jobs_total",
          "ctcpd_workload_cache_hits_total",
          "ctcpd_workload_cache_misses_total",
          "ctcpd_workload_cache_evictions_total",
          "ctcpd_workload_cache_entries"})
        EXPECT_NE(resp.body.find(std::string("# TYPE ") + family + " "),
                  std::string::npos)
            << family;
    EXPECT_EQ(post("/v1/metrics", "").status, 405);
}

TEST_F(ServerRouting, MetricsTrackJobAndCacheCountersAfterARun)
{
    // Two jobs share one workload setup: one miss, one hit.
    const std::string id =
        submit("bench=gzip;strategy=base,fdrt;budget=5000");
    waitDone(id);
    const service::HttpResponse resp = get("/v1/metrics");
    ASSERT_EQ(resp.status, 200);
    EXPECT_NE(resp.body.find("ctcpd_jobs_completed_total 2\n"),
              std::string::npos)
        << resp.body;
    EXPECT_NE(resp.body.find("ctcpd_pool_jobs_executed_total 2\n"),
              std::string::npos);
    EXPECT_NE(resp.body.find("ctcpd_runs{state=\"done\"} 1\n"),
              std::string::npos);
    EXPECT_NE(resp.body.find("ctcpd_workload_cache_hits_total 1\n"),
              std::string::npos);
    EXPECT_NE(resp.body.find("ctcpd_workload_cache_misses_total 1\n"),
              std::string::npos);
    EXPECT_EQ(resp.body.find("ctcpd_journal_bytes 0\n"),
              std::string::npos)
        << "journal bytes should be nonzero after a completed run";
}

TEST_F(ServerRouting, TraceIdEchoesOnlyWhenSupplied)
{
    service::HttpRequest req;
    std::string error;
    ASSERT_TRUE(service::parseRequest(
        "GET /v1/ping HTTP/1.1\r\n"
        "X-Ctcp-Trace-Id: cafe0123beef4567\r\n"
        "\r\n",
        req, error))
        << error;
    const service::HttpResponse traced = server_->handle(req);
    bool echoed = false;
    for (const auto &[name, value] : traced.headers)
        if (name == service::traceIdHeader &&
            value == "cafe0123beef4567")
            echoed = true;
    EXPECT_TRUE(echoed);

    const service::HttpResponse untraced = get("/v1/ping");
    for (const auto &[name, value] : untraced.headers)
        EXPECT_NE(name, std::string(service::traceIdHeader)) << value;
}

} // namespace
} // namespace ctcp
