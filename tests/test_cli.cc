/**
 * @file
 * End-to-end exit-code contract of the ctcpsim binary:
 *
 *   0  simulation (or every campaign job) succeeded
 *   1  the simulation failed, or at least one campaign job did
 *   2  usage or configuration error
 *
 * Scripts and CI gate on these, so they are pinned by test. The
 * binary path is injected at configure time (CTCP_CTCPSIM_PATH).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include <sys/wait.h>
#include <unistd.h>

namespace {

int
runCli(const std::string &args)
{
    const std::string cmd = std::string(CTCP_CTCPSIM_PATH) + " " + args +
        " >/dev/null 2>&1";
    const int rc = std::system(cmd.c_str());
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

TEST(CliExitCodes, SuccessfulRunReturnsZero)
{
    EXPECT_EQ(runCli("--bench gzip --instructions 20000"), 0);
}

TEST(CliExitCodes, SuccessfulCheckedRunReturnsZero)
{
    EXPECT_EQ(runCli("--bench gzip --instructions 20000 "
                     "--check-invariants"),
              0);
}

TEST(CliExitCodes, UsageErrorsReturnTwo)
{
    EXPECT_EQ(runCli("--no-such-flag"), 2);
    EXPECT_EQ(runCli("--bench no_such_bench"), 2);
    EXPECT_EQ(runCli("--strategy warp-speed"), 2);
    EXPECT_EQ(runCli("--deadline -3"), 2);
    EXPECT_EQ(runCli("--max-attempts 0"), 2);
    // --journal only makes sense with --campaign.
    EXPECT_EQ(runCli("--journal /tmp/ctcp_cli_journal.jsonl "
                     "--bench gzip --instructions 1000"),
              2);
}

TEST(CliExitCodes, BadIntervalReturnsTwo)
{
    // --interval validation mirrors --jobs: reject junk up front with
    // a usage error instead of silently simulating with a bad period.
    const std::string run = "--bench gzip --instructions 1000 "
                            "--interval-stats /tmp/ctcp_cli_iv.csv ";
    EXPECT_EQ(runCli(run + "--interval 0"), 2);
    EXPECT_EQ(runCli(run + "--interval -100"), 2);
    EXPECT_EQ(runCli(run + "--interval ten"), 2);
    EXPECT_EQ(runCli(run + "--interval 100x"), 2);
    EXPECT_EQ(runCli(run + "--interval 1000000000000000"), 2);
    EXPECT_EQ(runCli(run + "--interval 500"), 0);
    std::remove("/tmp/ctcp_cli_iv.csv");
}

TEST(CliExitCodes, BadTraceFilterReturnsTwo)
{
    EXPECT_EQ(runCli("--bench gzip --instructions 1000 "
                     "--trace-filter fetch,warp"),
              2);
}

TEST(CliExitCodes, AccountingRunReturnsZero)
{
    EXPECT_EQ(runCli("--bench gzip --instructions 20000 --accounting "
                     "--json"),
              0);
}

TEST(CliExitCodes, SimulationFailureReturnsOne)
{
    // A micro deadline always expires before the budget does.
    EXPECT_EQ(runCli("--bench gzip --instructions 2000000 "
                     "--deadline 0.000001"),
              1);
}

TEST(CliExitCodes, FailedCampaignJobsReturnOne)
{
    EXPECT_EQ(runCli("--campaign 'bench=gzip;strategy=base;"
                     "budget=2000000' --jobs 1 --deadline 0.000001"),
              1);
}

TEST(CliExitCodes, HealthyCampaignReturnsZero)
{
    EXPECT_EQ(runCli("--campaign 'bench=gzip;strategy=base;"
                     "budget=10000' --jobs 2"),
              0);
}

TEST(CliJournal, KilledCampaignResumesAndExportsIdenticalReport)
{
    // The full crash/resume walkthrough, driven through the real
    // binary: run with a journal, "lose" the last record as a kill
    // mid-append would, resume, and compare the exported report with
    // an uninterrupted run's.
    const std::string dir = ::testing::TempDir();
    const std::string journal = dir + "ctcp_cli_journal.jsonl";
    const std::string out1 = dir + "ctcp_cli_out1.json";
    const std::string out2 = dir + "ctcp_cli_out2.json";
    std::remove(journal.c_str());

    const std::string matrix =
        "--campaign 'bench=gzip;strategy=base,fdrt;budget=10000' "
        "--jobs 1 ";
    ASSERT_EQ(runCli(matrix + "--out " + out1), 0);
    ASSERT_EQ(runCli(matrix + "--journal " + journal), 0);

    // Drop the tail of the journal (simulated kill), then resume.
    std::FILE *f = std::fopen(journal.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    ASSERT_GT(size, 200L);
    ASSERT_EQ(truncate(journal.c_str(), size - 150), 0);
    std::fclose(f);

    ASSERT_EQ(runCli(matrix + "--journal " + journal + " --out " + out2),
              0);

    auto slurp = [](const std::string &path) {
        std::string text;
        std::FILE *file = std::fopen(path.c_str(), "rb");
        EXPECT_NE(file, nullptr) << path;
        if (!file)
            return text;
        char buf[4096];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0)
            text.append(buf, n);
        std::fclose(file);
        return text;
    };
    const std::string a = slurp(out1);
    const std::string b = slurp(out2);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
    std::remove(journal.c_str());
    std::remove(out1.c_str());
    std::remove(out2.c_str());
}

} // namespace
