/**
 * @file
 * Unit tests for the memory hierarchy: cache tag behaviour, MSHRs,
 * port scheduling, and the end-to-end data-memory latency model.
 */

#include <gtest/gtest.h>

#include "config/sim_config.hh"
#include "mem/cache.hh"
#include "mem/dmem.hh"
#include "mem/mshr.hh"

namespace ctcp {
namespace {

TEST(Cache, HitAfterFill)
{
    SetAssocCache c(16, 2, 32);
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x101f));   // same 32-byte line
    EXPECT_FALSE(c.access(0x1020));  // next line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEviction)
{
    SetAssocCache c(1, 2, 32);   // one set, two ways
    c.access(0x000);
    c.access(0x100);
    EXPECT_TRUE(c.access(0x000));    // refresh LRU order
    c.access(0x200);                 // evicts 0x100
    EXPECT_TRUE(c.probe(0x000));
    EXPECT_FALSE(c.probe(0x100));
    EXPECT_TRUE(c.probe(0x200));
}

TEST(Cache, ProbeDoesNotAllocate)
{
    SetAssocCache c(16, 2, 32);
    EXPECT_FALSE(c.probe(0x40));
    EXPECT_FALSE(c.access(0x40));   // still a miss (probe changed nothing)
}

TEST(Cache, AccessWithoutAllocate)
{
    SetAssocCache c(16, 2, 32);
    EXPECT_FALSE(c.access(0x40, false));
    EXPECT_FALSE(c.access(0x40));
    EXPECT_TRUE(c.access(0x40));
}

TEST(Cache, Invalidate)
{
    SetAssocCache c(16, 2, 32);
    c.access(0x80);
    c.invalidate(0x80);
    EXPECT_FALSE(c.probe(0x80));
}

TEST(Cache, SetsAreIndependent)
{
    SetAssocCache c(4, 1, 32);
    // Addresses mapping to different sets never conflict.
    c.access(0x00);
    c.access(0x20);
    c.access(0x40);
    c.access(0x60);
    EXPECT_TRUE(c.probe(0x00));
    EXPECT_TRUE(c.probe(0x60));
}

TEST(Mshr, MergeAndExpire)
{
    MshrFile m(2);
    m.allocate(0x10, 100);
    EXPECT_EQ(m.outstanding(0x10), 100u);
    EXPECT_EQ(m.outstanding(0x11), neverCycle);
    m.allocate(0x20, 50);
    EXPECT_TRUE(m.full());
    EXPECT_EQ(m.earliestReady(), 50u);
    m.expire(50);
    EXPECT_FALSE(m.full());
    EXPECT_EQ(m.outstanding(0x20), neverCycle);
    EXPECT_EQ(m.outstanding(0x10), 100u);
}

TEST(PortSchedule, SerializesBeyondWidth)
{
    PortSchedule ports(2);
    EXPECT_EQ(ports.reserve(10), 10u);
    EXPECT_EQ(ports.reserve(10), 10u);
    EXPECT_EQ(ports.reserve(10), 11u);   // third access spills
    EXPECT_EQ(ports.reserve(11), 11u);
    EXPECT_EQ(ports.reserve(11), 12u);
}

class DmemTest : public ::testing::Test
{
  protected:
    MemConfig cfg_;   // Table 7 defaults
    DataMemorySystem dmem_{cfg_};
};

TEST_F(DmemTest, ColdLoadMissesToMemory)
{
    auto r = dmem_.load(0x4000, 100);
    EXPECT_FALSE(r.l1Hit);
    EXPECT_FALSE(r.l2Hit);
    EXPECT_FALSE(r.tlbHit);
    // TLB miss (30) + L1 (2) + L2 (8) + memory (65).
    EXPECT_EQ(r.ready, 100u + 30 + 2 + 8 + 65);
}

TEST_F(DmemTest, WarmLoadHitsL1)
{
    dmem_.load(0x4000, 100);
    auto r = dmem_.load(0x4000, 300);
    EXPECT_TRUE(r.l1Hit);
    EXPECT_TRUE(r.tlbHit);
    EXPECT_EQ(r.ready, 300u + 1 + 2);   // TLB hit 1 + L1 2
}

TEST_F(DmemTest, SecondaryMissMerges)
{
    auto first = dmem_.load(0x8000, 100);
    auto second = dmem_.load(0x8008, 101);   // same 32-byte line
    // The tag is resident (allocate-on-miss) but the data arrives with
    // the outstanding fill: the second access completes no earlier.
    EXPECT_EQ(second.ready, first.ready);
    EXPECT_GE(dmem_.l1d().hits() + dmem_.l1d().misses(), 2u);
}

TEST_F(DmemTest, StoreToLoadForwarding)
{
    ASSERT_TRUE(dmem_.store(0x5000, 100));
    auto r = dmem_.load(0x5000, 101);
    EXPECT_TRUE(r.forwarded);
    EXPECT_EQ(dmem_.forwards(), 1u);
}

TEST_F(DmemTest, StoreBufferCapacity)
{
    // Fill the store buffer with slow-draining cold-miss stores.
    unsigned accepted = 0;
    for (unsigned i = 0; i < cfg_.storeBufferEntries + 8; ++i) {
        if (dmem_.store(0x9000 + i * 4096, 1))
            ++accepted;
    }
    EXPECT_EQ(accepted, cfg_.storeBufferEntries);
    EXPECT_TRUE(dmem_.storeBufferFull(1));
}

TEST_F(DmemTest, LoadQueueTracksInFlight)
{
    // Issue loads to distinct cold lines; entries stay until data
    // returns, so the queue eventually fills.
    unsigned issued = 0;
    for (unsigned i = 0; i < cfg_.loadQueueEntries; ++i) {
        EXPECT_FALSE(dmem_.loadQueueFull(1));
        dmem_.load(0x100000 + i * 4096, 1);
        ++issued;
    }
    EXPECT_TRUE(dmem_.loadQueueFull(1));
    // After everything completes the queue drains.
    EXPECT_FALSE(dmem_.loadQueueFull(1000000));
}

TEST_F(DmemTest, MshrLimitDelaysExtraMisses)
{
    // Issue more distinct-line misses at the same cycle than MSHRs.
    Cycle worst_within_limit = 0;
    for (unsigned i = 0; i < cfg_.mshrs; ++i) {
        auto r = dmem_.load(0x200000 + i * 4096, 10);
        worst_within_limit = std::max(worst_within_limit, r.ready);
    }
    auto r = dmem_.load(0x800000, 10);
    EXPECT_GT(r.ready, worst_within_limit);
}

TEST(InstMemory, MissThenHit)
{
    FrontEndConfig fe;
    MemConfig mc;
    DataMemorySystem dmem(mc);
    InstMemory imem(fe, dmem);
    EXPECT_GT(imem.fetchPenalty(0x40), 0u);
    EXPECT_EQ(imem.fetchPenalty(0x40), 0u);
}

TEST(InstMemory, SharesL2WithDataSide)
{
    FrontEndConfig fe;
    MemConfig mc;
    DataMemorySystem dmem(mc);
    InstMemory imem(fe, dmem);
    // First touch goes through the shared L2: L2 miss -> big penalty.
    const unsigned cold = imem.fetchPenalty(0x4000);
    EXPECT_EQ(cold, mc.l2ExtraLatency + mc.memLatency);
    imem.l1i();   // silence unused warnings in some configs
    // Evicting nothing, a different line in the same L2 set region:
    // after the data side touches the line, the I-side miss hits L2.
    dmem.load(0x8000, 1);
    SetAssocCache &l2 = dmem.sharedL2();
    EXPECT_TRUE(l2.probe(0x8000));
    const unsigned warm = imem.fetchPenalty(0x8000);
    EXPECT_EQ(warm, mc.l2ExtraLatency);
}

} // namespace
} // namespace ctcp
