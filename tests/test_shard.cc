/**
 * @file
 * Sharded campaign coordinator tests.
 *
 * Unit half (no sockets): the slots= matrix clause, the campaign
 * engine's slotIndexMap journaling (shard journals merge into one
 * resumable file, first-complete-wins on duplicates), and the
 * coordinator's deterministic building blocks — shard hashing, capped
 * jittered backoff, slot-range formatting, torn-chunk parsing, and the
 * offline journal merge.
 *
 * Fault-proof half: real ServiceServer daemons served from in-process
 * threads, with verify::NetFaultProxy injecting each failure mode the
 * coordinator defends against. Every scenario asserts the one
 * defense's counters AND that the final report stays byte-identical
 * to a single-host run — the headline robustness contract.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/campaign.hh"
#include "campaign/journal.hh"
#include "campaign/matrix.hh"
#include "common/sim_error.hh"
#include "service/client.hh"
#include "service/http.hh"
#include "service/server.hh"
#include "service/shard_coordinator.hh"
#include "verify/net_fault.hh"

namespace ctcp {
namespace {

// Four fast jobs: 2 benchmarks x 2 strategies at a small budget.
const char *const kSpec =
    "bench=gzip,adpcm_enc;strategy=base,fdrt;budget=20000";

std::string
tempDir(const std::string &tag)
{
    const std::string dir = ::testing::TempDir() + "ctcp_shard_" + tag;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** The single-host reference both halves compare against. */
std::string
referenceJson(const std::string &spec)
{
    campaign::Options options;
    options.jobs = 2;
    return campaign::runCampaign(campaign::parseMatrix(spec), options)
        .toJson();
}

// ---- slots= matrix clause ----------------------------------------------

TEST(MatrixSlots, SelectsSubsetAndMapsGlobalIndices)
{
    const std::vector<campaign::Job> all = campaign::parseMatrix(kSpec);
    ASSERT_EQ(all.size(), 4u);

    std::vector<std::size_t> slots;
    const std::vector<campaign::Job> subset =
        campaign::parseMatrix(std::string(kSpec) + ";slots=1,3", slots);
    ASSERT_EQ(subset.size(), 2u);
    EXPECT_EQ(slots, (std::vector<std::size_t>{1, 3}));
    // Labels and configs are those of the full expansion: a shard job
    // is the same job it would be in the unsharded campaign.
    EXPECT_EQ(subset[0].label, all[1].label);
    EXPECT_EQ(subset[1].label, all[3].label);
}

TEST(MatrixSlots, ExpandsRangesSortedAndDeduped)
{
    std::vector<std::size_t> slots;
    const std::vector<campaign::Job> subset = campaign::parseMatrix(
        std::string(kSpec) + ";slots=2,0-1,2", slots);
    EXPECT_EQ(subset.size(), 3u);
    EXPECT_EQ(slots, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(MatrixSlots, AbsentClauseYieldsIdentityMap)
{
    std::vector<std::size_t> slots;
    const std::vector<campaign::Job> all =
        campaign::parseMatrix(kSpec, slots);
    ASSERT_EQ(slots.size(), all.size());
    for (std::size_t i = 0; i < slots.size(); ++i)
        EXPECT_EQ(slots[i], i);
}

TEST(MatrixSlots, RejectsOutOfRangeAndBadRanges)
{
    EXPECT_THROW(
        campaign::parseMatrix(std::string(kSpec) + ";slots=4"),
        std::invalid_argument);
    EXPECT_THROW(
        campaign::parseMatrix(std::string(kSpec) + ";slots=3-1"),
        std::invalid_argument);
    EXPECT_THROW(
        campaign::parseMatrix(std::string(kSpec) + ";slots=x"),
        std::invalid_argument);
}

// ---- slotIndexMap journaling -------------------------------------------

TEST(SlotIndexMap, ShardJournalsMergeIntoOneResumableFile)
{
    const std::string dir = tempDir("slotmap");
    const std::string journal = dir + "/merged.jsonl";
    const std::vector<campaign::Job> all = campaign::parseMatrix(kSpec);

    // Run the campaign as two shard subsets journaling global indices
    // into the same file — exactly what two daemons' journals contain.
    for (const std::string slots : {"1,3", "0,2"}) {
        std::vector<std::size_t> map;
        const std::vector<campaign::Job> subset = campaign::parseMatrix(
            std::string(kSpec) + ";slots=" + slots, map);
        campaign::Options options;
        options.jobs = 2;
        options.journalPath = journal;
        options.slotIndexMap = map;
        campaign::runCampaign(subset, options);
    }

    // Replaying the merged journal over the full campaign reproduces
    // the single-host report byte for byte without running anything.
    campaign::Options replay;
    replay.journalPath = journal;
    const std::string merged_json =
        campaign::runCampaign(all, replay).toJson();
    EXPECT_EQ(merged_json, referenceJson(kSpec));
}

TEST(SlotIndexMap, ReplayIsFirstCompleteWins)
{
    const std::string dir = tempDir("firstwins");
    const std::vector<campaign::Job> all = campaign::parseMatrix(kSpec);

    // A clean journal for the full campaign...
    const std::string clean = dir + "/clean.jsonl";
    campaign::Options options;
    options.jobs = 2;
    options.journalPath = clean;
    const std::string expected =
        campaign::runCampaign(all, options).toJson();

    // ...plus a conflicting record for slot 0, as failover
    // re-execution on a second shard would produce.
    campaign::JobOutcome fake;
    fake.label = all[0].label;
    fake.benchmark = all[0].benchmark;
    fake.status = campaign::JobStatus::Failed;
    fake.error = "injected duplicate";
    const std::string fake_line = campaign::encodeJournalRecord(0, fake);

    // Duplicate after the real record: ignored.
    const std::string dup_after = dir + "/dup_after.jsonl";
    {
        std::ofstream out(dup_after, std::ios::binary);
        out << slurp(clean) << fake_line;
    }
    campaign::Options replay;
    replay.journalPath = dup_after;
    EXPECT_EQ(campaign::runCampaign(all, replay).toJson(), expected);

    // Duplicate before the real record: the first record wins, so the
    // injected failure is what the report shows.
    const std::string dup_before = dir + "/dup_before.jsonl";
    {
        std::ofstream out(dup_before, std::ios::binary);
        out << fake_line << slurp(clean);
    }
    replay.journalPath = dup_before;
    const campaign::Report report = campaign::runCampaign(all, replay);
    EXPECT_FALSE(report.at(all[0].label).ok());
    EXPECT_EQ(report.at(all[0].label).error, "injected duplicate");
}

TEST(SlotIndexMap, SizeMismatchIsRejected)
{
    const std::vector<campaign::Job> all = campaign::parseMatrix(kSpec);
    campaign::Options options;
    options.slotIndexMap = {0, 1};
    EXPECT_THROW(campaign::runCampaign(all, options),
                 std::invalid_argument);
}

// ---- Coordinator building blocks ---------------------------------------

TEST(ShardHash, IsFnv1aAndStable)
{
    // Published FNV-1a 64 test vectors.
    EXPECT_EQ(service::shardHash(""), 14695981039346656037ull);
    EXPECT_EQ(service::shardHash("a"), 12638187200555641996ull);
    EXPECT_EQ(service::shardHash("gzip/base"),
              service::shardHash("gzip/base"));
    EXPECT_NE(service::shardHash("gzip/base"),
              service::shardHash("gzip/fdrt"));
    EXPECT_EQ(service::shardOfLabel("anything", 1), 0u);
    for (int i = 0; i < 8; ++i)
        EXPECT_LT(service::shardOfLabel("label" + std::to_string(i), 3),
                  3u);
}

TEST(ShardBackoff, GrowsDoublesCapsAndJitters)
{
    service::ShardPolicy policy;
    policy.backoffBaseSeconds = 0.1;
    policy.backoffCapSeconds = 2.0;
    const double raws[] = {0.1, 0.2, 0.4, 0.8, 1.6, 2.0, 2.0};
    std::uint64_t rng = 42;
    for (unsigned k = 0; k < 7; ++k) {
        const double d =
            service::shardBackoffSeconds(k + 1, policy, rng);
        EXPECT_GE(d, raws[k] / 2 - 1e-12) << "failure " << (k + 1);
        EXPECT_LE(d, raws[k] + 1e-12) << "failure " << (k + 1);
    }

    // Same seed, same sequence — the jitter is deterministic.
    std::uint64_t a = 7, b = 7;
    for (unsigned k = 1; k <= 5; ++k)
        EXPECT_EQ(service::shardBackoffSeconds(k, policy, a),
                  service::shardBackoffSeconds(k, policy, b));
}

TEST(SlotRanges, CompressConsecutiveRuns)
{
    EXPECT_EQ(service::formatSlotRanges({}), "");
    EXPECT_EQ(service::formatSlotRanges({5}), "5");
    EXPECT_EQ(service::formatSlotRanges({0, 1, 2, 3, 7, 9, 10}),
              "0-3,7,9-10");
}

TEST(JournalChunk, ConsumesWholeLinesOnly)
{
    campaign::JobOutcome ok;
    ok.label = "j0";
    ok.status = campaign::JobStatus::Ok;
    const std::string line0 = campaign::encodeJournalRecord(0, ok);
    ok.label = "j1";
    const std::string line1 = campaign::encodeJournalRecord(1, ok);

    // Clean chunk: everything consumed, nothing torn.
    service::ParsedChunk clean =
        service::parseJournalChunk(line0 + line1);
    EXPECT_EQ(clean.entries.size(), 2u);
    EXPECT_EQ(clean.consumedBytes, line0.size() + line1.size());
    EXPECT_FALSE(clean.torn);

    // Torn tail: the partial record is neither consumed nor decoded.
    const std::string torn_tail = line1.substr(0, line1.size() / 2);
    service::ParsedChunk torn =
        service::parseJournalChunk(line0 + torn_tail);
    ASSERT_EQ(torn.entries.size(), 1u);
    EXPECT_EQ(torn.entries[0].record.index, 0u);
    EXPECT_EQ(torn.consumedBytes, line0.size());
    EXPECT_TRUE(torn.torn);

    // A complete-but-corrupt line is consumed (skipping it cannot lose
    // a record: the daemon re-serves real records forever) but counted.
    service::ParsedChunk corrupt =
        service::parseJournalChunk("not json\n" + line1);
    EXPECT_EQ(corrupt.entries.size(), 1u);
    EXPECT_EQ(corrupt.corruptLines, 1u);
    EXPECT_EQ(corrupt.consumedBytes, 9 + line1.size());

    // A nonempty chunk with zero whole lines consumes nothing — the
    // caller treats that as a transport failure, not progress.
    service::ParsedChunk none = service::parseJournalChunk("{\"trunc");
    EXPECT_TRUE(none.entries.empty());
    EXPECT_EQ(none.consumedBytes, 0u);
    EXPECT_TRUE(none.torn);
}

TEST(MergeJournals, DedupesValidatesAndFindsMissing)
{
    const std::string dir = tempDir("merge");
    const std::vector<campaign::Job> all = campaign::parseMatrix(kSpec);

    // Produce real per-shard journals (global indices) for slots
    // {0,2} and {1} — slot 3 is missing, and shard B also re-ran
    // slot 0 (failover duplicate).
    const std::string a = dir + "/a.jsonl", b = dir + "/b.jsonl";
    for (const auto &[path, slots] :
         {std::pair<std::string, std::string>{a, "0,2"}, {b, "1"}}) {
        std::vector<std::size_t> map;
        const std::vector<campaign::Job> subset = campaign::parseMatrix(
            std::string(kSpec) + ";slots=" + slots, map);
        campaign::Options options;
        options.jobs = 2;
        options.journalPath = path;
        options.slotIndexMap = map;
        campaign::runCampaign(subset, options);
    }
    {
        // Duplicate + alien record appended to shard B's journal.
        const std::string first_line =
            slurp(a).substr(0, slurp(a).find('\n') + 1);
        campaign::JobOutcome alien;
        alien.label = "not/a/job";
        std::ofstream out(b, std::ios::binary | std::ios::app);
        out << first_line << campaign::encodeJournalRecord(9, alien);
    }

    const std::string merged = dir + "/merged.jsonl";
    service::MergeResult result = service::mergeJournalFiles(
        {b, a}, all, merged); // order must not matter for the content
    EXPECT_EQ(result.merged, 3u);
    EXPECT_EQ(result.duplicates, 1u);
    EXPECT_EQ(result.mismatched, 1u);
    EXPECT_EQ(result.missingSlots, (std::vector<std::size_t>{3}));

    // Replaying the merged journal runs exactly the missing slot and
    // reproduces the single-host report.
    campaign::Options replay;
    replay.journalPath = merged;
    replay.jobs = 2;
    EXPECT_EQ(campaign::runCampaign(all, replay).toJson(),
              referenceJson(kSpec));
}

// ---- In-process daemons + fault proofs ---------------------------------

/** A real ServiceServer served from an in-process thread. */
class InProcDaemon
{
  public:
    explicit InProcDaemon(const std::string &tag, unsigned workers = 2)
        : dir_(tempDir("d_" + tag))
    {
        service::ServiceServer::Config config;
        config.socketPath = dir_ + "/d.sock";
        config.registry.stateDir = dir_ + "/state";
        config.registry.workers = workers;
        server_ = std::make_unique<service::ServiceServer>(config);
        thread_ = std::thread([this] { server_->serve(stop_); });
        waitReady();
    }

    ~InProcDaemon() { stop(); }

    void stop()
    {
        if (!thread_.joinable())
            return;
        stop_ = true;
        thread_.join();
    }

    std::string socket() const { return dir_ + "/d.sock"; }
    const std::string &dir() const { return dir_; }

  private:
    void waitReady()
    {
        for (int i = 0; i < 100; ++i) {
            service::HttpResponse resp;
            std::string error;
            if (service::httpRequest(socket(), "GET", "/v1/ping", "",
                                     resp, error) &&
                resp.status == 200)
                return;
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
        FAIL() << "in-process daemon never became ready";
    }

    std::string dir_;
    std::unique_ptr<service::ServiceServer> server_;
    std::atomic<bool> stop_{false};
    std::thread thread_;
};

/** Fast-failing policy so fault scenarios converge in milliseconds. */
service::ShardPolicy
quickPolicy()
{
    service::ShardPolicy policy;
    policy.connectTimeoutSeconds = 2.0;
    policy.readTimeoutSeconds = 10.0;
    policy.writeTimeoutSeconds = 5.0;
    policy.pollWaitSeconds = 0.2;
    policy.backoffBaseSeconds = 0.01;
    policy.backoffCapSeconds = 0.05;
    policy.maxConsecutiveFailures = 3;
    policy.jitterSeed = 7;
    policy.localWorkers = 2;
    return policy;
}

TEST(ShardCoordinator, TwoShardsProduceByteIdenticalReport)
{
    InProcDaemon a("happy_a"), b("happy_b");
    service::ShardOptions options;
    options.spec = kSpec;
    options.sockets = {a.socket(), b.socket()};
    options.policy = quickPolicy();

    const service::ShardedReport sharded =
        service::runShardedCampaign(options);
    EXPECT_EQ(sharded.report.toJson(), referenceJson(kSpec));
    EXPECT_EQ(sharded.reassignedSlots, 0u);
    EXPECT_EQ(sharded.locallyRunSlots, 0u);
    std::size_t assigned = 0, completed = 0;
    for (const service::ShardStats &stats : sharded.shards) {
        EXPECT_FALSE(stats.circuitOpen) << stats.socket;
        assigned += stats.assignedSlots;
        completed += stats.completedSlots;
    }
    EXPECT_EQ(assigned, 4u);
    EXPECT_EQ(completed, 4u);
    EXPECT_TRUE(sharded.journalPath.empty()); // temp journal cleaned
}

TEST(ShardCoordinator, RefusedConnectionsRetryWithBackoff)
{
    InProcDaemon upstream("refuse");
    const std::string dir = tempDir("refuse_proxy");
    verify::NetFaultProxy proxy(dir + "/p.sock", upstream.socket());
    std::string error;
    ASSERT_TRUE(proxy.start(error)) << error;
    verify::NetFaultProxy::Plan plan;
    plan.refuseConnections = 2; // below the circuit threshold of 3
    proxy.setPlan(plan);

    service::ShardOptions options;
    options.spec = kSpec;
    options.sockets = {proxy.listenPath()};
    options.policy = quickPolicy();

    const service::ShardedReport sharded =
        service::runShardedCampaign(options);
    // Backoff rode out the refusals: same bytes, no circuit, and the
    // sleeps/failures are visible in the stats.
    EXPECT_EQ(sharded.report.toJson(), referenceJson(kSpec));
    ASSERT_EQ(sharded.shards.size(), 1u);
    EXPECT_FALSE(sharded.shards[0].circuitOpen);
    EXPECT_EQ(sharded.shards[0].transportFailures, 2u);
    EXPECT_EQ(sharded.shards[0].backoffSleeps, 2u);
    EXPECT_EQ(sharded.locallyRunSlots, 0u);
    EXPECT_GE(proxy.stats().refused, 2u);
    proxy.stop();
}

TEST(ShardCoordinator, DeadShardIsCircuitBrokenAndReassigned)
{
    InProcDaemon survivor("dead_a");
    const std::string dead =
        tempDir("dead_sock") + "/never-bound.sock";

    // The hash must give the dead shard (index 1) some slots, or the
    // scenario would not exercise reassignment at all.
    const std::vector<campaign::Job> all = campaign::parseMatrix(kSpec);
    std::size_t dead_slots = 0;
    for (const campaign::Job &job : all)
        if (service::shardOfLabel(job.label, 2) == 1)
            ++dead_slots;
    ASSERT_GT(dead_slots, 0u) << "pick a matrix that hashes to both";

    service::ShardOptions options;
    options.spec = kSpec;
    options.sockets = {survivor.socket(), dead};
    options.policy = quickPolicy();

    const service::ShardedReport sharded =
        service::runShardedCampaign(options);
    EXPECT_EQ(sharded.report.toJson(), referenceJson(kSpec));
    EXPECT_FALSE(sharded.shards[0].circuitOpen);
    EXPECT_EQ(sharded.shards[0].circuitBreaks, 0u);
    EXPECT_TRUE(sharded.shards[1].circuitOpen);
    EXPECT_EQ(sharded.shards[1].circuitBreaks, 1u);
    EXPECT_GE(sharded.shards[1].healthProbes, 1u);
    EXPECT_EQ(sharded.shards[1].completedSlots, 0u);
    EXPECT_GE(sharded.shards[1].transportFailures, 3u);
    EXPECT_EQ(sharded.reassignedSlots, dead_slots);
    EXPECT_EQ(sharded.locallyRunSlots, 0u);
}

TEST(ShardCoordinator, TraceIdReachesEveryShardOnEveryExchange)
{
    InProcDaemon a("trace_a"), b("trace_b");
    const std::string dir = tempDir("trace_proxy");
    // A capturing proxy in front of each daemon shows exactly what
    // crossed the wire, fault-free.
    verify::NetFaultProxy proxy_a(dir + "/a.sock", a.socket());
    verify::NetFaultProxy proxy_b(dir + "/b.sock", b.socket());
    std::string error;
    ASSERT_TRUE(proxy_a.start(error)) << error;
    ASSERT_TRUE(proxy_b.start(error)) << error;

    service::ShardOptions options;
    options.spec = kSpec;
    options.sockets = {proxy_a.listenPath(), proxy_b.listenPath()};
    options.policy = quickPolicy();
    options.traceId = "feedfacecafe0001";

    const service::ShardedReport sharded =
        service::runShardedCampaign(options);
    EXPECT_EQ(sharded.report.toJson(), referenceJson(kSpec));

    for (verify::NetFaultProxy *proxy : {&proxy_a, &proxy_b}) {
        const std::vector<std::string> requests =
            proxy->capturedRequests();
        ASSERT_FALSE(requests.empty()) << proxy->listenPath();
        for (const std::string &request : requests)
            EXPECT_NE(request.find(
                          "X-Ctcp-Trace-Id: feedfacecafe0001\r\n"),
                      std::string::npos)
                << request.substr(0, request.find("\r\n\r\n"));
    }
    proxy_a.stop();
    proxy_b.stop();
}

TEST(ShardCoordinator, TruncatedStreamsCircuitBreakAndReassign)
{
    InProcDaemon direct("trunc_a"), behind("trunc_b");
    const std::string dir = tempDir("trunc_proxy");
    verify::NetFaultProxy proxy(dir + "/p.sock", behind.socket());
    std::string error;
    ASSERT_TRUE(proxy.start(error)) << error;
    verify::NetFaultProxy::Plan plan;
    plan.faultedResponses = 1000; // every response through the proxy
    plan.truncateResponseBytes = 40; // cut inside the status line
    proxy.setPlan(plan);

    service::ShardOptions options;
    options.spec = kSpec;
    options.sockets = {direct.socket(), proxy.listenPath()};
    options.policy = quickPolicy();

    const service::ShardedReport sharded =
        service::runShardedCampaign(options);
    // Truncation is never mistaken for data: the cut shard fails, its
    // circuit opens, and the surviving shard covers its slots with the
    // exact same bytes as a clean single-host run.
    EXPECT_EQ(sharded.report.toJson(), referenceJson(kSpec));
    EXPECT_FALSE(sharded.shards[0].circuitOpen);
    EXPECT_TRUE(sharded.shards[1].circuitOpen);
    EXPECT_GE(sharded.shards[1].transportFailures, 3u);
    EXPECT_EQ(sharded.locallyRunSlots, 0u);
    EXPECT_GE(proxy.stats().faulted, 3u);
    proxy.stop();
}

TEST(ShardCoordinator, DelaysPastDeadlineCircuitBreak)
{
    InProcDaemon direct("delay_a"), behind("delay_b");
    const std::string dir = tempDir("delay_proxy");
    verify::NetFaultProxy proxy(dir + "/p.sock", behind.socket());
    std::string error;
    ASSERT_TRUE(proxy.start(error)) << error;
    verify::NetFaultProxy::Plan plan;
    plan.faultedResponses = 1000;
    plan.responseDelaySeconds = 1.0; // far past the read deadline
    proxy.setPlan(plan);

    service::ShardOptions options;
    options.spec = kSpec;
    options.sockets = {direct.socket(), proxy.listenPath()};
    options.policy = quickPolicy();
    options.policy.readTimeoutSeconds = 0.15;
    options.policy.pollWaitSeconds = 0.1;

    const service::ShardedReport sharded =
        service::runShardedCampaign(options);
    // A daemon slower than the deadline is indistinguishable from a
    // dead one: deadlines fire, the circuit opens, work moves on.
    EXPECT_EQ(sharded.report.toJson(), referenceJson(kSpec));
    EXPECT_TRUE(sharded.shards[1].circuitOpen);
    EXPECT_GE(sharded.shards[1].transportFailures, 3u);
    EXPECT_EQ(sharded.locallyRunSlots, 0u);
    proxy.stop();
}

TEST(ShardCoordinator, AllShardsDeadDegradesToLocalExecution)
{
    const std::string dir = tempDir("alldead");
    service::ShardOptions options;
    options.spec = kSpec;
    options.sockets = {dir + "/a.sock", dir + "/b.sock"};
    options.policy = quickPolicy();

    const service::ShardedReport sharded =
        service::runShardedCampaign(options);
    EXPECT_EQ(sharded.report.toJson(), referenceJson(kSpec));
    EXPECT_EQ(sharded.locallyRunSlots, 4u);
    for (const service::ShardStats &stats : sharded.shards)
        EXPECT_TRUE(stats.circuitOpen) << stats.socket;
}

TEST(ShardCoordinator, NoLocalFallbackSurfacesUndeliveredSlots)
{
    const std::string dir = tempDir("nofallback");
    service::ShardOptions options;
    options.spec = kSpec;
    options.sockets = {dir + "/a.sock"};
    options.policy = quickPolicy();
    options.policy.localFallback = false;
    options.journalPath = dir + "/merged.jsonl";

    EXPECT_THROW(service::runShardedCampaign(options), SimError);
    // The merged journal survives for ctcp_merge recovery.
    EXPECT_TRUE(std::filesystem::exists(options.journalPath));
}

TEST(ShardCoordinator, RejectsBadSpecsUpFront)
{
    service::ShardOptions options;
    options.spec = std::string(kSpec) + ";slots=0";
    options.sockets = {"/tmp/whatever.sock"};
    EXPECT_THROW(service::runShardedCampaign(options), SimError);

    options.spec = kSpec;
    options.sockets.clear();
    EXPECT_THROW(service::runShardedCampaign(options), SimError);
}

TEST(ShardCoordinator, ResumesFromExistingMergedJournal)
{
    InProcDaemon daemon("resume");
    const std::string dir = tempDir("resume_coord");
    const std::string journal = dir + "/merged.jsonl";

    // A previous coordinator got slots 0 and 2 before dying.
    {
        std::vector<std::size_t> map;
        const std::vector<campaign::Job> subset = campaign::parseMatrix(
            std::string(kSpec) + ";slots=0,2", map);
        campaign::Options options;
        options.jobs = 2;
        options.journalPath = journal;
        options.slotIndexMap = map;
        campaign::runCampaign(subset, options);
    }

    service::ShardOptions options;
    options.spec = kSpec;
    options.sockets = {daemon.socket()};
    options.policy = quickPolicy();
    options.journalPath = journal;

    const service::ShardedReport sharded =
        service::runShardedCampaign(options);
    EXPECT_EQ(sharded.report.toJson(), referenceJson(kSpec));
    // Only the two missing slots were handed to the shard.
    EXPECT_EQ(sharded.shards[0].assignedSlots, 2u);
    EXPECT_EQ(sharded.shards[0].completedSlots, 2u);
    EXPECT_EQ(sharded.journalPath, journal);
}

} // namespace
} // namespace ctcp
