# Empty dependencies file for table2_critical_deps.
# This may be replaced when dependencies are built.
