file(REMOVE_RECURSE
  "CMakeFiles/table2_critical_deps.dir/table2_critical_deps.cc.o"
  "CMakeFiles/table2_critical_deps.dir/table2_critical_deps.cc.o.d"
  "table2_critical_deps"
  "table2_critical_deps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_critical_deps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
