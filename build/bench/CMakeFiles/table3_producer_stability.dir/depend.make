# Empty dependencies file for table3_producer_stability.
# This may be replaced when dependencies are built.
