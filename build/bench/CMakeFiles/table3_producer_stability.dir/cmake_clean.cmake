file(REMOVE_RECURSE
  "CMakeFiles/table3_producer_stability.dir/table3_producer_stability.cc.o"
  "CMakeFiles/table3_producer_stability.dir/table3_producer_stability.cc.o.d"
  "table3_producer_stability"
  "table3_producer_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_producer_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
