file(REMOVE_RECURSE
  "CMakeFiles/fig5_latency_ablation.dir/fig5_latency_ablation.cc.o"
  "CMakeFiles/fig5_latency_ablation.dir/fig5_latency_ablation.cc.o.d"
  "fig5_latency_ablation"
  "fig5_latency_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_latency_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
