# Empty dependencies file for table1_tc_characteristics.
# This may be replaced when dependencies are built.
