file(REMOVE_RECURSE
  "CMakeFiles/table8_forwarding.dir/table8_forwarding.cc.o"
  "CMakeFiles/table8_forwarding.dir/table8_forwarding.cc.o.d"
  "table8_forwarding"
  "table8_forwarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_forwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
