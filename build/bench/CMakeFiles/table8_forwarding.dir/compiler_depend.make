# Empty compiler generated dependencies file for table8_forwarding.
# This may be replaced when dependencies are built.
