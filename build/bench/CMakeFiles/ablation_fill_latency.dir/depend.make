# Empty dependencies file for ablation_fill_latency.
# This may be replaced when dependencies are built.
