file(REMOVE_RECURSE
  "CMakeFiles/ablation_fill_latency.dir/ablation_fill_latency.cc.o"
  "CMakeFiles/ablation_fill_latency.dir/ablation_fill_latency.cc.o.d"
  "ablation_fill_latency"
  "ablation_fill_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fill_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
