# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig7_fdrt_option_mix.
