file(REMOVE_RECURSE
  "CMakeFiles/fig7_fdrt_option_mix.dir/fig7_fdrt_option_mix.cc.o"
  "CMakeFiles/fig7_fdrt_option_mix.dir/fig7_fdrt_option_mix.cc.o.d"
  "fig7_fdrt_option_mix"
  "fig7_fdrt_option_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_fdrt_option_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
