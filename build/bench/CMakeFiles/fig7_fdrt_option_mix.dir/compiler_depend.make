# Empty compiler generated dependencies file for fig7_fdrt_option_mix.
# This may be replaced when dependencies are built.
