file(REMOVE_RECURSE
  "CMakeFiles/ablation_fdrt_components.dir/ablation_fdrt_components.cc.o"
  "CMakeFiles/ablation_fdrt_components.dir/ablation_fdrt_components.cc.o.d"
  "ablation_fdrt_components"
  "ablation_fdrt_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fdrt_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
