# Empty dependencies file for fig8_other_configs.
# This may be replaced when dependencies are built.
