file(REMOVE_RECURSE
  "CMakeFiles/fig8_other_configs.dir/fig8_other_configs.cc.o"
  "CMakeFiles/fig8_other_configs.dir/fig8_other_configs.cc.o.d"
  "fig8_other_configs"
  "fig8_other_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_other_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
