# Empty compiler generated dependencies file for fig9_suite_speedups.
# This may be replaced when dependencies are built.
