file(REMOVE_RECURSE
  "CMakeFiles/fig9_suite_speedups.dir/fig9_suite_speedups.cc.o"
  "CMakeFiles/fig9_suite_speedups.dir/fig9_suite_speedups.cc.o.d"
  "fig9_suite_speedups"
  "fig9_suite_speedups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_suite_speedups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
