file(REMOVE_RECURSE
  "CMakeFiles/fig4_critical_input_source.dir/fig4_critical_input_source.cc.o"
  "CMakeFiles/fig4_critical_input_source.dir/fig4_critical_input_source.cc.o.d"
  "fig4_critical_input_source"
  "fig4_critical_input_source.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_critical_input_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
