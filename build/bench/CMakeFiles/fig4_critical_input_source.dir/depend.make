# Empty dependencies file for fig4_critical_input_source.
# This may be replaced when dependencies are built.
