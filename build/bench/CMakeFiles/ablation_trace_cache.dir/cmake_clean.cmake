file(REMOVE_RECURSE
  "CMakeFiles/ablation_trace_cache.dir/ablation_trace_cache.cc.o"
  "CMakeFiles/ablation_trace_cache.dir/ablation_trace_cache.cc.o.d"
  "ablation_trace_cache"
  "ablation_trace_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_trace_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
