# Empty dependencies file for ablation_trace_cache.
# This may be replaced when dependencies are built.
