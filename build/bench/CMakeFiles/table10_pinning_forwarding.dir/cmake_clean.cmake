file(REMOVE_RECURSE
  "CMakeFiles/table10_pinning_forwarding.dir/table10_pinning_forwarding.cc.o"
  "CMakeFiles/table10_pinning_forwarding.dir/table10_pinning_forwarding.cc.o.d"
  "table10_pinning_forwarding"
  "table10_pinning_forwarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_pinning_forwarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
