# Empty compiler generated dependencies file for table10_pinning_forwarding.
# This may be replaced when dependencies are built.
