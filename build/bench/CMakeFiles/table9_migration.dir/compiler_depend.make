# Empty compiler generated dependencies file for table9_migration.
# This may be replaced when dependencies are built.
