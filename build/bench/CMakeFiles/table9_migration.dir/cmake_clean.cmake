file(REMOVE_RECURSE
  "CMakeFiles/table9_migration.dir/table9_migration.cc.o"
  "CMakeFiles/table9_migration.dir/table9_migration.cc.o.d"
  "table9_migration"
  "table9_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
