# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_prog[1]_include.cmake")
include("/root/repo/build/tests/test_func[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_bpred[1]_include.cmake")
include("/root/repo/build/tests/test_tracecache[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_assign[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_simulator[1]_include.cmake")
include("/root/repo/build/tests/test_fetch[1]_include.cmake")
include("/root/repo/build/tests/test_profiler[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_regression[1]_include.cmake")
