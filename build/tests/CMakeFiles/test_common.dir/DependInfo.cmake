
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/test_common.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/test_common.dir/test_common.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ctcp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ctcp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/assign/CMakeFiles/ctcp_assign.dir/DependInfo.cmake"
  "/root/repo/build/src/tracecache/CMakeFiles/ctcp_tracecache.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ctcp_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/bpred/CMakeFiles/ctcp_bpred.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ctcp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/func/CMakeFiles/ctcp_func.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/ctcp_config.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ctcp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/prog/CMakeFiles/ctcp_prog.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ctcp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ctcp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
