# Empty dependencies file for ctcpsim.
# This may be replaced when dependencies are built.
