file(REMOVE_RECURSE
  "CMakeFiles/ctcpsim.dir/ctcpsim_main.cc.o"
  "CMakeFiles/ctcpsim.dir/ctcpsim_main.cc.o.d"
  "ctcpsim"
  "ctcpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctcpsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
