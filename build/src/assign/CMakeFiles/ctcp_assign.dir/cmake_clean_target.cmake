file(REMOVE_RECURSE
  "libctcp_assign.a"
)
