file(REMOVE_RECURSE
  "CMakeFiles/ctcp_assign.dir/fdrt_assignment.cc.o"
  "CMakeFiles/ctcp_assign.dir/fdrt_assignment.cc.o.d"
  "CMakeFiles/ctcp_assign.dir/friendly_assignment.cc.o"
  "CMakeFiles/ctcp_assign.dir/friendly_assignment.cc.o.d"
  "libctcp_assign.a"
  "libctcp_assign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctcp_assign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
