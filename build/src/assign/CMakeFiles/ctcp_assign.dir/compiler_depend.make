# Empty compiler generated dependencies file for ctcp_assign.
# This may be replaced when dependencies are built.
