file(REMOVE_RECURSE
  "libctcp_config.a"
)
