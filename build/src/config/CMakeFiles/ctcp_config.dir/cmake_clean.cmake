file(REMOVE_RECURSE
  "CMakeFiles/ctcp_config.dir/presets.cc.o"
  "CMakeFiles/ctcp_config.dir/presets.cc.o.d"
  "CMakeFiles/ctcp_config.dir/sim_config.cc.o"
  "CMakeFiles/ctcp_config.dir/sim_config.cc.o.d"
  "libctcp_config.a"
  "libctcp_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctcp_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
