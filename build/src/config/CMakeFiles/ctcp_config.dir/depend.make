# Empty dependencies file for ctcp_config.
# This may be replaced when dependencies are built.
