file(REMOVE_RECURSE
  "libctcp_func.a"
)
