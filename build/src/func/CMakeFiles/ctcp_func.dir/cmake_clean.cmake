file(REMOVE_RECURSE
  "CMakeFiles/ctcp_func.dir/executor.cc.o"
  "CMakeFiles/ctcp_func.dir/executor.cc.o.d"
  "libctcp_func.a"
  "libctcp_func.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctcp_func.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
