# Empty dependencies file for ctcp_func.
# This may be replaced when dependencies are built.
