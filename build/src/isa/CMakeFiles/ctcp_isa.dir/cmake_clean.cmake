file(REMOVE_RECURSE
  "CMakeFiles/ctcp_isa.dir/instruction.cc.o"
  "CMakeFiles/ctcp_isa.dir/instruction.cc.o.d"
  "CMakeFiles/ctcp_isa.dir/opcodes.cc.o"
  "CMakeFiles/ctcp_isa.dir/opcodes.cc.o.d"
  "libctcp_isa.a"
  "libctcp_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctcp_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
