# Empty dependencies file for ctcp_isa.
# This may be replaced when dependencies are built.
