file(REMOVE_RECURSE
  "libctcp_isa.a"
)
