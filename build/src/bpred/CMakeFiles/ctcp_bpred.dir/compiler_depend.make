# Empty compiler generated dependencies file for ctcp_bpred.
# This may be replaced when dependencies are built.
