file(REMOVE_RECURSE
  "libctcp_bpred.a"
)
