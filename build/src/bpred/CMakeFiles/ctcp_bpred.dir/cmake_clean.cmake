file(REMOVE_RECURSE
  "CMakeFiles/ctcp_bpred.dir/predictor.cc.o"
  "CMakeFiles/ctcp_bpred.dir/predictor.cc.o.d"
  "libctcp_bpred.a"
  "libctcp_bpred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctcp_bpred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
