file(REMOVE_RECURSE
  "CMakeFiles/ctcp_common.dir/logging.cc.o"
  "CMakeFiles/ctcp_common.dir/logging.cc.o.d"
  "libctcp_common.a"
  "libctcp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctcp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
