file(REMOVE_RECURSE
  "libctcp_common.a"
)
