# Empty dependencies file for ctcp_common.
# This may be replaced when dependencies are built.
