file(REMOVE_RECURSE
  "CMakeFiles/ctcp_cluster.dir/cluster.cc.o"
  "CMakeFiles/ctcp_cluster.dir/cluster.cc.o.d"
  "libctcp_cluster.a"
  "libctcp_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctcp_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
