# Empty compiler generated dependencies file for ctcp_cluster.
# This may be replaced when dependencies are built.
