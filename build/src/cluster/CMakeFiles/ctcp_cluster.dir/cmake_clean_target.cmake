file(REMOVE_RECURSE
  "libctcp_cluster.a"
)
