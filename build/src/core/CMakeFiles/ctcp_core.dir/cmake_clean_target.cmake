file(REMOVE_RECURSE
  "libctcp_core.a"
)
