file(REMOVE_RECURSE
  "CMakeFiles/ctcp_core.dir/fetch.cc.o"
  "CMakeFiles/ctcp_core.dir/fetch.cc.o.d"
  "CMakeFiles/ctcp_core.dir/profiler.cc.o"
  "CMakeFiles/ctcp_core.dir/profiler.cc.o.d"
  "CMakeFiles/ctcp_core.dir/sim_result.cc.o"
  "CMakeFiles/ctcp_core.dir/sim_result.cc.o.d"
  "CMakeFiles/ctcp_core.dir/simulator.cc.o"
  "CMakeFiles/ctcp_core.dir/simulator.cc.o.d"
  "libctcp_core.a"
  "libctcp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctcp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
