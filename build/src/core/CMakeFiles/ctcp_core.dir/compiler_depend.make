# Empty compiler generated dependencies file for ctcp_core.
# This may be replaced when dependencies are built.
