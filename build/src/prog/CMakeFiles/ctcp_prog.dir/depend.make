# Empty dependencies file for ctcp_prog.
# This may be replaced when dependencies are built.
