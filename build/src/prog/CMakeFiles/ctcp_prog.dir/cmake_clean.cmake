file(REMOVE_RECURSE
  "CMakeFiles/ctcp_prog.dir/builder.cc.o"
  "CMakeFiles/ctcp_prog.dir/builder.cc.o.d"
  "libctcp_prog.a"
  "libctcp_prog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctcp_prog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
