file(REMOVE_RECURSE
  "libctcp_prog.a"
)
