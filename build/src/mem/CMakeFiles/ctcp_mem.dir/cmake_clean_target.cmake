file(REMOVE_RECURSE
  "libctcp_mem.a"
)
