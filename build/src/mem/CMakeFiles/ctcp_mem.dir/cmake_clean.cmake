file(REMOVE_RECURSE
  "CMakeFiles/ctcp_mem.dir/cache.cc.o"
  "CMakeFiles/ctcp_mem.dir/cache.cc.o.d"
  "CMakeFiles/ctcp_mem.dir/dmem.cc.o"
  "CMakeFiles/ctcp_mem.dir/dmem.cc.o.d"
  "CMakeFiles/ctcp_mem.dir/mshr.cc.o"
  "CMakeFiles/ctcp_mem.dir/mshr.cc.o.d"
  "libctcp_mem.a"
  "libctcp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctcp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
