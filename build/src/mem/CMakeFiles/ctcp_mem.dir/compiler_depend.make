# Empty compiler generated dependencies file for ctcp_mem.
# This may be replaced when dependencies are built.
