# Empty compiler generated dependencies file for ctcp_tracecache.
# This may be replaced when dependencies are built.
