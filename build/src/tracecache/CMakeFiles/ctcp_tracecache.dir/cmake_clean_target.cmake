file(REMOVE_RECURSE
  "libctcp_tracecache.a"
)
