file(REMOVE_RECURSE
  "CMakeFiles/ctcp_tracecache.dir/fill_unit.cc.o"
  "CMakeFiles/ctcp_tracecache.dir/fill_unit.cc.o.d"
  "CMakeFiles/ctcp_tracecache.dir/trace_cache.cc.o"
  "CMakeFiles/ctcp_tracecache.dir/trace_cache.cc.o.d"
  "libctcp_tracecache.a"
  "libctcp_tracecache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctcp_tracecache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
