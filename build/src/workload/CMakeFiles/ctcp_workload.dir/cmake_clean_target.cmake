file(REMOVE_RECURSE
  "libctcp_workload.a"
)
