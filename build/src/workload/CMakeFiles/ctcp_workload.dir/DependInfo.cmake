
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/media/adpcm_dec.cc" "src/workload/CMakeFiles/ctcp_workload.dir/media/adpcm_dec.cc.o" "gcc" "src/workload/CMakeFiles/ctcp_workload.dir/media/adpcm_dec.cc.o.d"
  "/root/repo/src/workload/media/adpcm_enc.cc" "src/workload/CMakeFiles/ctcp_workload.dir/media/adpcm_enc.cc.o" "gcc" "src/workload/CMakeFiles/ctcp_workload.dir/media/adpcm_enc.cc.o.d"
  "/root/repo/src/workload/media/epic.cc" "src/workload/CMakeFiles/ctcp_workload.dir/media/epic.cc.o" "gcc" "src/workload/CMakeFiles/ctcp_workload.dir/media/epic.cc.o.d"
  "/root/repo/src/workload/media/g721_dec.cc" "src/workload/CMakeFiles/ctcp_workload.dir/media/g721_dec.cc.o" "gcc" "src/workload/CMakeFiles/ctcp_workload.dir/media/g721_dec.cc.o.d"
  "/root/repo/src/workload/media/g721_enc.cc" "src/workload/CMakeFiles/ctcp_workload.dir/media/g721_enc.cc.o" "gcc" "src/workload/CMakeFiles/ctcp_workload.dir/media/g721_enc.cc.o.d"
  "/root/repo/src/workload/media/gsm_dec.cc" "src/workload/CMakeFiles/ctcp_workload.dir/media/gsm_dec.cc.o" "gcc" "src/workload/CMakeFiles/ctcp_workload.dir/media/gsm_dec.cc.o.d"
  "/root/repo/src/workload/media/gsm_enc.cc" "src/workload/CMakeFiles/ctcp_workload.dir/media/gsm_enc.cc.o" "gcc" "src/workload/CMakeFiles/ctcp_workload.dir/media/gsm_enc.cc.o.d"
  "/root/repo/src/workload/media/jpeg_dec.cc" "src/workload/CMakeFiles/ctcp_workload.dir/media/jpeg_dec.cc.o" "gcc" "src/workload/CMakeFiles/ctcp_workload.dir/media/jpeg_dec.cc.o.d"
  "/root/repo/src/workload/media/jpeg_enc.cc" "src/workload/CMakeFiles/ctcp_workload.dir/media/jpeg_enc.cc.o" "gcc" "src/workload/CMakeFiles/ctcp_workload.dir/media/jpeg_enc.cc.o.d"
  "/root/repo/src/workload/media/mpeg2_dec.cc" "src/workload/CMakeFiles/ctcp_workload.dir/media/mpeg2_dec.cc.o" "gcc" "src/workload/CMakeFiles/ctcp_workload.dir/media/mpeg2_dec.cc.o.d"
  "/root/repo/src/workload/media/mpeg2_enc.cc" "src/workload/CMakeFiles/ctcp_workload.dir/media/mpeg2_enc.cc.o" "gcc" "src/workload/CMakeFiles/ctcp_workload.dir/media/mpeg2_enc.cc.o.d"
  "/root/repo/src/workload/media/pegwit_dec.cc" "src/workload/CMakeFiles/ctcp_workload.dir/media/pegwit_dec.cc.o" "gcc" "src/workload/CMakeFiles/ctcp_workload.dir/media/pegwit_dec.cc.o.d"
  "/root/repo/src/workload/media/pegwit_enc.cc" "src/workload/CMakeFiles/ctcp_workload.dir/media/pegwit_enc.cc.o" "gcc" "src/workload/CMakeFiles/ctcp_workload.dir/media/pegwit_enc.cc.o.d"
  "/root/repo/src/workload/media/unepic.cc" "src/workload/CMakeFiles/ctcp_workload.dir/media/unepic.cc.o" "gcc" "src/workload/CMakeFiles/ctcp_workload.dir/media/unepic.cc.o.d"
  "/root/repo/src/workload/registry.cc" "src/workload/CMakeFiles/ctcp_workload.dir/registry.cc.o" "gcc" "src/workload/CMakeFiles/ctcp_workload.dir/registry.cc.o.d"
  "/root/repo/src/workload/spec/bzip2.cc" "src/workload/CMakeFiles/ctcp_workload.dir/spec/bzip2.cc.o" "gcc" "src/workload/CMakeFiles/ctcp_workload.dir/spec/bzip2.cc.o.d"
  "/root/repo/src/workload/spec/crafty.cc" "src/workload/CMakeFiles/ctcp_workload.dir/spec/crafty.cc.o" "gcc" "src/workload/CMakeFiles/ctcp_workload.dir/spec/crafty.cc.o.d"
  "/root/repo/src/workload/spec/eon.cc" "src/workload/CMakeFiles/ctcp_workload.dir/spec/eon.cc.o" "gcc" "src/workload/CMakeFiles/ctcp_workload.dir/spec/eon.cc.o.d"
  "/root/repo/src/workload/spec/gap.cc" "src/workload/CMakeFiles/ctcp_workload.dir/spec/gap.cc.o" "gcc" "src/workload/CMakeFiles/ctcp_workload.dir/spec/gap.cc.o.d"
  "/root/repo/src/workload/spec/gcc.cc" "src/workload/CMakeFiles/ctcp_workload.dir/spec/gcc.cc.o" "gcc" "src/workload/CMakeFiles/ctcp_workload.dir/spec/gcc.cc.o.d"
  "/root/repo/src/workload/spec/gzip.cc" "src/workload/CMakeFiles/ctcp_workload.dir/spec/gzip.cc.o" "gcc" "src/workload/CMakeFiles/ctcp_workload.dir/spec/gzip.cc.o.d"
  "/root/repo/src/workload/spec/mcf.cc" "src/workload/CMakeFiles/ctcp_workload.dir/spec/mcf.cc.o" "gcc" "src/workload/CMakeFiles/ctcp_workload.dir/spec/mcf.cc.o.d"
  "/root/repo/src/workload/spec/parser.cc" "src/workload/CMakeFiles/ctcp_workload.dir/spec/parser.cc.o" "gcc" "src/workload/CMakeFiles/ctcp_workload.dir/spec/parser.cc.o.d"
  "/root/repo/src/workload/spec/perlbmk.cc" "src/workload/CMakeFiles/ctcp_workload.dir/spec/perlbmk.cc.o" "gcc" "src/workload/CMakeFiles/ctcp_workload.dir/spec/perlbmk.cc.o.d"
  "/root/repo/src/workload/spec/twolf.cc" "src/workload/CMakeFiles/ctcp_workload.dir/spec/twolf.cc.o" "gcc" "src/workload/CMakeFiles/ctcp_workload.dir/spec/twolf.cc.o.d"
  "/root/repo/src/workload/spec/vortex.cc" "src/workload/CMakeFiles/ctcp_workload.dir/spec/vortex.cc.o" "gcc" "src/workload/CMakeFiles/ctcp_workload.dir/spec/vortex.cc.o.d"
  "/root/repo/src/workload/spec/vpr.cc" "src/workload/CMakeFiles/ctcp_workload.dir/spec/vpr.cc.o" "gcc" "src/workload/CMakeFiles/ctcp_workload.dir/spec/vpr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/prog/CMakeFiles/ctcp_prog.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ctcp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ctcp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
