# Empty compiler generated dependencies file for ctcp_workload.
# This may be replaced when dependencies are built.
