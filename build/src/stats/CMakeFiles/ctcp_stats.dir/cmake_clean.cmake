file(REMOVE_RECURSE
  "CMakeFiles/ctcp_stats.dir/stats.cc.o"
  "CMakeFiles/ctcp_stats.dir/stats.cc.o.d"
  "CMakeFiles/ctcp_stats.dir/table.cc.o"
  "CMakeFiles/ctcp_stats.dir/table.cc.o.d"
  "libctcp_stats.a"
  "libctcp_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctcp_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
