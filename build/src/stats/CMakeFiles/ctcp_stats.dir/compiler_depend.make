# Empty compiler generated dependencies file for ctcp_stats.
# This may be replaced when dependencies are built.
