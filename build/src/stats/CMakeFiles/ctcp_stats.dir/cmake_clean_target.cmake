file(REMOVE_RECURSE
  "libctcp_stats.a"
)
