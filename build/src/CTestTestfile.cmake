# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("stats")
subdirs("config")
subdirs("isa")
subdirs("prog")
subdirs("func")
subdirs("workload")
subdirs("mem")
subdirs("bpred")
subdirs("tracecache")
subdirs("cluster")
subdirs("assign")
subdirs("core")
