/**
 * @file
 * Figure 5 — expected speedup from removing dependency-related
 * latencies on the base machine: all forwarding latency, only the
 * critical (last-arriving) forwarded value's latency, only intra-trace
 * forwarding latency, only inter-trace forwarding latency, and the
 * register-file read latency.
 *
 * Paper values (harmonic means): No Fwd Lat +41.8%, No Crit Fwd Lat
 * +37.2%, No Intra-Trace +17.7%, No Inter-Trace +15.5%, No RF ~0%.
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace ctcp;
    using namespace ctcp::bench;

    const std::uint64_t budget = budgetFromArgs(argc, argv);
    banner("Figure 5: Speedup From Removing Certain Latencies",
           "HM: NoFwd 1.418, NoCritFwd 1.372, NoIntra 1.177, "
           "NoInter 1.155, NoRF ~1.0",
           budget);

    struct Mode
    {
        const char *label;
        std::function<void(AblationConfig &)> apply;
    };
    const std::vector<Mode> modes = {
        {"No Fwd Lat",
         [](AblationConfig &a) { a.zeroAllForwardLatency = true; }},
        {"No Crit Fwd Lat",
         [](AblationConfig &a) { a.zeroCriticalForwardLatency = true; }},
        {"No Intra-Trace Lat",
         [](AblationConfig &a) { a.zeroIntraTraceForwardLatency = true; }},
        {"No Inter-Trace Lat",
         [](AblationConfig &a) { a.zeroInterTraceForwardLatency = true; }},
        {"No RF Lat",
         [](AblationConfig &a) { a.zeroRegisterFileLatency = true; }},
    };

    std::vector<std::string> headers = {"benchmark"};
    for (const Mode &m : modes)
        headers.push_back(m.label);
    TextTable table(headers);

    std::vector<std::vector<double>> speedups(modes.size());
    for (const std::string &bench : selectedSix()) {
        const SimResult base = simulate(bench, baseConfig(), budget);
        table.row(bench);
        for (std::size_t m = 0; m < modes.size(); ++m) {
            SimConfig cfg = baseConfig();
            modes[m].apply(cfg.ablation);
            const SimResult r = simulate(bench, cfg, budget);
            const double speedup =
                static_cast<double>(base.cycles) /
                static_cast<double>(r.cycles);
            table.cell(speedup, 3);
            speedups[m].push_back(speedup);
        }
    }
    table.row("HM");
    for (std::size_t m = 0; m < modes.size(); ++m)
        table.cell(harmonicMean(speedups[m]), 3);
    std::printf("%s", table.render().c_str());
    return 0;
}
