/**
 * @file
 * google-benchmark microbenchmarks for the simulator's hot components:
 * trace-cache lookup, fill-unit construction with each assignment
 * policy, branch prediction, cache access, the functional executor,
 * and whole-pipeline simulation throughput.
 *
 * These measure the *simulator's* speed (host instructions per
 * simulated unit), which is what determines how much of the paper's
 * evaluation fits in a given wall-clock budget.
 */

#include <benchmark/benchmark.h>

#include "assign/base_assignment.hh"
#include "assign/fdrt_assignment.hh"
#include "assign/friendly_assignment.hh"
#include "bpred/predictor.hh"
#include "common/random.hh"
#include "config/presets.hh"
#include "core/simulator.hh"
#include "mem/cache.hh"
#include "tracecache/fill_unit.hh"
#include "workload/workload.hh"

namespace {

using namespace ctcp;

void
BM_FunctionalExecutor(benchmark::State &state)
{
    Program p = workloads::build("gzip");
    Executor exec(p);
    DynInst d;
    for (auto _ : state) {
        exec.step(d);
        benchmark::DoNotOptimize(d.pc);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FunctionalExecutor);

void
BM_CacheAccess(benchmark::State &state)
{
    SetAssocCache cache(256, 4, 32);
    Rng rng(1);
    std::uint64_t addr = 0;
    for (auto _ : state) {
        addr = rng.below(1 << 20);
        benchmark::DoNotOptimize(cache.access(addr));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_BranchPredictorUpdate(benchmark::State &state)
{
    BranchPredictorConfig cfg;
    BranchPredictor bp(cfg);
    Rng rng(2);
    for (auto _ : state) {
        const Addr pc = rng.below(4096);
        bp.update(pc, true, rng.chance(1, 3), pc + 7);
        benchmark::DoNotOptimize(bp.peekDirection(pc));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BranchPredictorUpdate);

void
BM_TraceCacheLookup(benchmark::State &state)
{
    TraceCacheConfig cfg;
    TraceCache tc(cfg);
    // Populate with 512 single-block lines.
    for (Addr start = 0; start < 512; ++start) {
        TraceLine line;
        line.key.startPc = start * 16;
        for (int i = 0; i < 12; ++i) {
            TraceSlot slot;
            slot.pc = start * 16 + static_cast<Addr>(i);
            slot.physSlot = static_cast<std::uint8_t>(i);
            line.insts.push_back(slot);
        }
        tc.insert(line);
    }
    Rng rng(3);
    auto dirs = [](Addr, unsigned) { return true; };
    for (auto _ : state) {
        benchmark::DoNotOptimize(tc.lookup(rng.below(512) * 16, dirs));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceCacheLookup);

/** Build a representative 16-instruction draft for policy benchmarks. */
TraceDraft
policyDraft(Rng &rng)
{
    TraceDraft d;
    d.numClusters = 4;
    d.slotsPerCluster = 4;
    for (int i = 0; i < 16; ++i) {
        DraftInst di;
        di.pc = 100 + static_cast<Addr>(i);
        di.dst = static_cast<RegId>(1 + rng.below(28));
        di.src1 = static_cast<RegId>(1 + rng.below(28));
        di.writesDst = true;
        di.criticalSrc = 1;
        di.criticalForwarded = rng.chance(3, 4);
        di.criticalInterTrace = rng.chance(1, 4);
        d.insts.push_back(di);
    }
    for (int i = 1; i < 16; ++i) {
        d.insts[static_cast<std::size_t>(i)].intraProducer = -1;
        for (int j = i - 1; j >= 0; --j) {
            if (d.insts[static_cast<std::size_t>(j)].dst ==
                d.insts[static_cast<std::size_t>(i)].src1) {
                d.insts[static_cast<std::size_t>(i)].intraProducer = j;
                break;
            }
        }
    }
    return d;
}

template <typename Policy>
void
policyLoop(benchmark::State &state, Policy &policy)
{
    Rng rng(4);
    std::vector<TraceDraft> drafts;
    for (int i = 0; i < 64; ++i)
        drafts.push_back(policyDraft(rng));
    std::size_t n = 0;
    for (auto _ : state) {
        TraceDraft d = drafts[n++ % drafts.size()];
        policy.assign(d);
        benchmark::DoNotOptimize(d.insts[0].physSlot);
    }
    state.SetItemsProcessed(state.iterations() * 16);
}

void
BM_AssignBase(benchmark::State &state)
{
    BaseSlotOrderAssignment policy;
    policyLoop(state, policy);
}
BENCHMARK(BM_AssignBase);

void
BM_AssignFriendly(benchmark::State &state)
{
    ClusterConfig cc;
    Interconnect ic(cc);
    FriendlyAssignment policy(ic, false);
    policyLoop(state, policy);
}
BENCHMARK(BM_AssignFriendly);

void
BM_AssignFdrt(benchmark::State &state)
{
    ClusterConfig cc;
    Interconnect ic(cc);
    FdrtAssignment policy(ic, true);
    policyLoop(state, policy);
}
BENCHMARK(BM_AssignFdrt);

void
BM_PipelineSimulation(benchmark::State &state)
{
    // Simulated instructions per second of the full CTCP model.
    const auto strategy = static_cast<AssignStrategy>(state.range(0));
    for (auto _ : state) {
        SimConfig cfg = baseConfig();
        cfg.assign.strategy = strategy;
        cfg.instructionLimit = 20000;
        Program p = workloads::build("gzip");
        CtcpSimulator sim(cfg, p);
        benchmark::DoNotOptimize(sim.run().cycles);
    }
    state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_PipelineSimulation)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
