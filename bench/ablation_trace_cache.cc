/**
 * @file
 * Ablation of the trace-cache size: sweep the line count from 64 to
 * 2048 and report TC coverage, fetched trace size and IPC under FDRT.
 *
 * The FDRT profile fields live in trace lines, so a small trace cache
 * both starves fetch bandwidth and erases chain history — coverage and
 * the FDRT gain should grow together with capacity and saturate once
 * the working set fits (the paper's footnote: a 10-cycle or even
 * 1000-cycle fill-unit latency does not matter, but losing lines does).
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace ctcp;
    using namespace ctcp::bench;

    const std::uint64_t budget = budgetFromArgs(argc, argv);
    banner("Ablation: trace cache capacity sweep (FDRT)",
           "coverage and FDRT gain saturate once the trace working set "
           "fits",
           budget);

    const std::vector<unsigned> capacities = {64u, 128u, 256u, 512u,
                                              1024u, 2048u};
    MatrixHarness runs(budget, jobsFromArgs(argc, argv));
    for (unsigned entries : capacities) {
        for (const std::string &bench : selectedSix()) {
            SimConfig base = baseConfig();
            base.frontEnd.traceCache.entries = entries;
            SimConfig fdrt = base;
            fdrt.assign.strategy = AssignStrategy::Fdrt;
            runs.add(bench, base, std::to_string(entries) + "/base");
            runs.add(bench, fdrt, std::to_string(entries) + "/fdrt");
        }
    }
    runs.run();

    TextTable table({"entries", "% from TC", "fetched trace size",
                     "base IPC", "FDRT IPC", "FDRT speedup"});
    for (unsigned entries : capacities) {
        double pct = 0, size = 0, bipc = 0, fipc = 0, speedup = 0;
        for (const std::string &bench : selectedSix()) {
            const SimResult &rb =
                runs.at(bench, std::to_string(entries) + "/base");
            const SimResult &rf =
                runs.at(bench, std::to_string(entries) + "/fdrt");
            pct += rf.pctFromTraceCache;
            size += rf.meanTraceSize;
            bipc += rb.ipc();
            fipc += rf.ipc();
            speedup += static_cast<double>(rb.cycles) /
                static_cast<double>(rf.cycles);
        }
        table.row(std::to_string(entries))
            .percentCell(pct / 6.0)
            .cell(size / 6.0, 2)
            .cell(bipc / 6.0, 3)
            .cell(fipc / 6.0, 3)
            .cell(speedup / 6.0, 3);
    }
    std::printf("%s", table.render().c_str());
    return 0;
}
