/**
 * @file
 * Ablation of the FDRT strategy's components (the Section 5.3
 * analysis): how much comes from the intra-trace heuristics alone
 * (chains disabled) versus the inter-trace chain feedback, compared
 * against Friendly's scheme and its middle-bias variant.
 *
 * Paper reference: Friendly +3.1%, Friendly with middle bias +4.7%,
 * FDRT intra-trace heuristics alone +5.7%, full FDRT +11.5%.
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace ctcp;
    using namespace ctcp::bench;

    const std::uint64_t budget = budgetFromArgs(argc, argv);
    banner("Ablation: FDRT components (Section 5.3)",
           "friendly +3.1, friendly-mid +4.7, fdrt-intra-only +5.7, "
           "full fdrt +11.5",
           budget);

    struct Mode
    {
        const char *label;
        std::function<void(SimConfig &)> apply;
    };
    const std::vector<Mode> modes = {
        {"Friendly",
         [](SimConfig &c) { c.assign.strategy = AssignStrategy::Friendly; }},
        {"Friendly+mid",
         [](SimConfig &c) {
             c.assign.strategy = AssignStrategy::Friendly;
             c.assign.friendlyMiddleBias = true;
         }},
        {"FDRT intra-only",
         [](SimConfig &c) {
             c.assign.strategy = AssignStrategy::Fdrt;
             c.assign.fdrtChains = false;
         }},
        {"FDRT no-pin",
         [](SimConfig &c) {
             c.assign.strategy = AssignStrategy::Fdrt;
             c.assign.fdrtPinning = false;
         }},
        {"FDRT full",
         [](SimConfig &c) { c.assign.strategy = AssignStrategy::Fdrt; }},
    };

    MatrixHarness runs(budget, jobsFromArgs(argc, argv));
    for (const std::string &bench : selectedSix()) {
        runs.add(bench, baseConfig(), "base");
        for (const Mode &m : modes) {
            SimConfig cfg = baseConfig();
            m.apply(cfg);
            runs.add(bench, cfg, m.label);
        }
    }
    runs.run();

    std::vector<std::string> headers = {"benchmark"};
    for (const Mode &m : modes)
        headers.push_back(m.label);
    TextTable table(headers);

    std::vector<std::vector<double>> speedups(modes.size());
    for (const std::string &bench : selectedSix()) {
        const SimResult &base = runs.at(bench, "base");
        table.row(bench);
        for (std::size_t m = 0; m < modes.size(); ++m) {
            const SimResult &r = runs.at(bench, modes[m].label);
            const double speedup = static_cast<double>(base.cycles) /
                static_cast<double>(r.cycles);
            table.cell(speedup, 3);
            speedups[m].push_back(speedup);
        }
    }
    table.row("HM");
    for (std::size_t m = 0; m < modes.size(); ++m)
        table.cell(harmonicMean(speedups[m]), 3);
    std::printf("%s", table.render().c_str());
    return 0;
}
