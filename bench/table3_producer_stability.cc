/**
 * @file
 * Table 3 — frequency of repeated forwarding producers: how often a
 * static instruction's forwarded input comes from the same producer PC
 * as its previous dynamic instance, for each source register, over all
 * forwarded inputs and over the critical inter-trace subset.
 *
 * Paper values: all-inputs RS1 avg 97.1, RS2 avg 94.5; critical
 * inter-trace RS1 avg 90.3, RS2 avg 84.7. This repeatability is what
 * makes history-based chain prediction viable (Section 3.3).
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace ctcp;
    using namespace ctcp::bench;

    const std::uint64_t budget = budgetFromArgs(argc, argv);
    banner("Table 3: Frequency of Repeated Forwarding Producers",
           "all RS1 97.1 / RS2 94.5; crit inter-trace RS1 90.3 / RS2 84.7",
           budget);

    TextTable table({"benchmark", "RS1 (all)", "RS2 (all)",
                     "RS1 (crit inter)", "RS2 (crit inter)"});
    double s1 = 0, s2 = 0, s3 = 0, s4 = 0;
    for (const std::string &bench : selectedSix()) {
        const SimResult r = simulate(bench, baseConfig(), budget);
        table.row(bench)
            .percentCell(r.repeatRs1)
            .percentCell(r.repeatRs2)
            .percentCell(r.repeatRs1CritInter)
            .percentCell(r.repeatRs2CritInter);
        s1 += r.repeatRs1;
        s2 += r.repeatRs2;
        s3 += r.repeatRs1CritInter;
        s4 += r.repeatRs2CritInter;
    }
    table.row("Average")
        .percentCell(s1 / 6.0)
        .percentCell(s2 / 6.0)
        .percentCell(s3 / 6.0)
        .percentCell(s4 / 6.0);
    std::printf("%s", table.render().c_str());
    return 0;
}
