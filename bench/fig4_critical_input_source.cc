/**
 * @file
 * Figure 4 — source of the most critical (last-arriving) input for
 * dynamic instructions with register inputs: the register file, the
 * producer of RS1, or the producer of RS2.
 *
 * Paper values (averages): RF 44%, RS1 31%, RS2 25%. The synthetic
 * kernels are tighter loops than full SPEC programs, so forwarding
 * covers a larger share here; the shape that matters downstream is
 * that forwarded inputs dominate criticality and RS1 > RS2.
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace ctcp;
    using namespace ctcp::bench;

    const std::uint64_t budget = budgetFromArgs(argc, argv);
    banner("Figure 4: Source of Most Critical Input Dependency",
           "averages: from RF 44%, from RS1 31%, from RS2 25%",
           budget);

    TextTable table({"benchmark", "from RF", "from RS1", "from RS2"});
    double rf = 0, r1 = 0, r2 = 0;
    for (const std::string &bench : selectedSix()) {
        const SimResult r = simulate(bench, baseConfig(), budget);
        table.row(bench)
            .percentCell(r.pctCritFromRF)
            .percentCell(r.pctCritFromRs1)
            .percentCell(r.pctCritFromRs2);
        rf += r.pctCritFromRF;
        r1 += r.pctCritFromRs1;
        r2 += r.pctCritFromRs2;
    }
    table.row("Average")
        .percentCell(rf / 6.0)
        .percentCell(r1 / 6.0)
        .percentCell(r2 / 6.0);
    std::printf("%s", table.render().c_str());
    return 0;
}
