/**
 * @file
 * Table 10 — intra-cluster critical data forwarding under FDRT with
 * and without leader pinning.
 *
 * Paper values: pinning raises the average same-cluster critical
 * forwarding from 58.57% to 60.51% (4 of 6 benchmarks improve; bzip2
 * improves the most).
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace ctcp;
    using namespace ctcp::bench;

    const std::uint64_t budget = budgetFromArgs(argc, argv);
    banner("Table 10: Intra-Cluster Critical Forwarding vs Pinning",
           "averages: with pinning 60.51% vs no pinning 58.57%",
           budget);

    TextTable table({"benchmark", "With Pinning", "No Pinning"});
    double sp = 0, snp = 0;
    for (const std::string &bench : selectedSix()) {
        SimConfig pin_cfg = withStrategy(baseConfig(), AssignStrategy::Fdrt);
        pin_cfg.assign.fdrtPinning = true;
        SimConfig nopin_cfg = pin_cfg;
        nopin_cfg.assign.fdrtPinning = false;

        const SimResult pin = simulate(bench, pin_cfg, budget);
        const SimResult nopin = simulate(bench, nopin_cfg, budget);
        table.row(bench)
            .percentCell(pin.pctIntraClusterFwd)
            .percentCell(nopin.pctIntraClusterFwd);
        sp += pin.pctIntraClusterFwd;
        snp += nopin.pctIntraClusterFwd;
    }
    table.row("Average")
        .percentCell(sp / 6.0)
        .percentCell(snp / 6.0);
    std::printf("%s", table.render().c_str());
    return 0;
}
