/**
 * @file
 * Figure 8 — strategy speedups under alternate cluster architectures:
 * a mesh interconnect (end clusters adjacent), one-cycle inter-cluster
 * forwarding, and an eight-wide machine with two four-wide clusters
 * (issue-time analysis latency drops to two cycles). Speedups are
 * relative to the matching architecture's own base machine.
 *
 * Paper shape: absolute speedups shrink for every strategy versus the
 * original architecture, FDRT stays ahead of issue-time steering in
 * all three variants, and the FDRT-vs-Friendly margin narrows.
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace ctcp;
    using namespace ctcp::bench;

    const std::uint64_t budget = budgetFromArgs(argc, argv);
    banner("Figure 8: Speedups For Other Cluster Configurations",
           "smaller gains everywhere; FDRT keeps its edge over "
           "issue-time in all variants",
           budget);

    struct Variant
    {
        const char *label;
        SimConfig (*make)();
    };
    const std::vector<Variant> variants = {
        {"Mesh Network", meshConfig},
        {"One Cycle Forward Lat", oneCycleForwardConfig},
        {"Eight-wide, Two-cluster", twoClusterConfig},
    };

    const AssignStrategy strategies[3] = {
        AssignStrategy::Fdrt, AssignStrategy::Friendly,
        AssignStrategy::IssueTime};
    const char *strategy_tags[3] = {"fdrt", "friendly", "issue-time"};

    MatrixHarness runs(budget, jobsFromArgs(argc, argv));
    for (const Variant &v : variants) {
        for (const std::string &bench : selectedSix()) {
            runs.add(bench, v.make(), std::string(v.label) + "/base");
            for (int m = 0; m < 3; ++m) {
                SimConfig cfg = v.make();
                cfg.assign.strategy = strategies[m];
                // twoClusterConfig already sets issueTimeLatency = 2.
                runs.add(bench, cfg,
                         std::string(v.label) + "/" + strategy_tags[m]);
            }
        }
    }
    runs.run();

    for (const Variant &v : variants) {
        std::printf("-- %s --\n", v.label);
        TextTable table({"benchmark", "FDRT", "Friendly", "Issue-time"});
        std::vector<std::vector<double>> speedups(3);
        for (const std::string &bench : selectedSix()) {
            const SimResult &base =
                runs.at(bench, std::string(v.label) + "/base");
            table.row(bench);
            for (int m = 0; m < 3; ++m) {
                const SimResult &r = runs.at(
                    bench, std::string(v.label) + "/" + strategy_tags[m]);
                const double speedup = static_cast<double>(base.cycles) /
                    static_cast<double>(r.cycles);
                table.cell(speedup, 3);
                speedups[static_cast<std::size_t>(m)].push_back(speedup);
            }
        }
        table.row("HM");
        for (auto &s : speedups)
            table.cell(harmonicMean(s), 3);
        std::printf("%s\n", table.render().c_str());
    }
    return 0;
}
