/**
 * @file
 * Table 9 — instruction cluster migration under FDRT with and without
 * leader pinning: the share of revisited dynamic instructions whose
 * assigned cluster differs from their previous dynamic invocation,
 * over all instructions and over chain instructions.
 *
 * Paper values: all-instruction migration avg 4.25% (pinning) vs
 * 5.80% (no pinning); pinning cuts chain-instruction migration by
 * ~41% on average.
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace ctcp;
    using namespace ctcp::bench;

    const std::uint64_t budget = budgetFromArgs(argc, argv);
    banner("Table 9: Instruction Cluster Migration",
           "all-instr avg: pinning 4.25% vs no-pinning 5.80%; "
           "chain migration cut ~41% by pinning",
           budget);

    TextTable table({"benchmark", "all (pin)", "all (no pin)",
                     "all reduction", "chain (pin)", "chain (no pin)",
                     "chain reduction"});
    double sp = 0, snp = 0, scp = 0, scnp = 0;
    for (const std::string &bench : selectedSix()) {
        SimConfig pin_cfg = withStrategy(baseConfig(), AssignStrategy::Fdrt);
        pin_cfg.assign.fdrtPinning = true;
        SimConfig nopin_cfg = pin_cfg;
        nopin_cfg.assign.fdrtPinning = false;

        const SimResult pin = simulate(bench, pin_cfg, budget);
        const SimResult nopin = simulate(bench, nopin_cfg, budget);
        auto reduction = [](double with_pin, double without) {
            return without > 0.0
                ? 100.0 * (without - with_pin) / without : 0.0;
        };
        table.row(bench)
            .percentCell(pin.migrationAllPct)
            .percentCell(nopin.migrationAllPct)
            .percentCell(reduction(pin.migrationAllPct,
                                   nopin.migrationAllPct))
            .percentCell(pin.migrationChainPct)
            .percentCell(nopin.migrationChainPct)
            .percentCell(reduction(pin.migrationChainPct,
                                   nopin.migrationChainPct));
        sp += pin.migrationAllPct;
        snp += nopin.migrationAllPct;
        scp += pin.migrationChainPct;
        scnp += nopin.migrationChainPct;
    }
    table.row("Average")
        .percentCell(sp / 6.0)
        .percentCell(snp / 6.0)
        .percentCell(snp > 0 ? 100.0 * (snp - sp) / snp : 0.0)
        .percentCell(scp / 6.0)
        .percentCell(scnp / 6.0)
        .percentCell(scnp > 0 ? 100.0 * (scnp - scp) / scnp : 0.0);
    std::printf("%s", table.render().c_str());
    return 0;
}
