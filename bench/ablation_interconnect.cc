/**
 * @file
 * Ablation of the inter-cluster interconnect: the baseline linear
 * point-to-point network, the mesh (ring) variant, and a shared
 * broadcast bus (uniform latency, one broadcast per cycle) — the
 * design Parcerisa et al. showed inferior to point-to-point, which
 * the paper takes as a premise.
 *
 * Expected shape: p2p linear > bus (bandwidth serialization dominates
 * despite the bus's shorter worst-case "distance"); the mesh is best;
 * FDRT's relative gain is largest where forwarding is most expensive.
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace ctcp;
    using namespace ctcp::bench;

    const std::uint64_t budget = budgetFromArgs(argc, argv);
    banner("Ablation: interconnect topology (p2p vs mesh vs bus)",
           "point-to-point beats bus (Parcerisa et al.); mesh best",
           budget);

    struct Net
    {
        const char *label;
        SimConfig (*make)();
    };
    const std::vector<Net> nets = {
        {"linear p2p", baseConfig},
        {"mesh p2p", meshConfig},
        {"shared bus", busConfig},
    };

    MatrixHarness runs(budget, jobsFromArgs(argc, argv));
    for (const std::string &bench : selectedSix()) {
        for (const Net &net : nets) {
            runs.add(bench, net.make(), std::string(net.label) + "/base");
            SimConfig fdrt = net.make();
            fdrt.assign.strategy = AssignStrategy::Fdrt;
            runs.add(bench, fdrt, std::string(net.label) + "/fdrt");
        }
    }
    runs.run();

    TextTable table({"benchmark", "linear IPC", "mesh IPC", "bus IPC",
                     "linear+fdrt", "mesh+fdrt", "bus+fdrt"});
    std::vector<double> base_ipc(3, 0.0), fdrt_ipc(3, 0.0);
    for (const std::string &bench : selectedSix()) {
        table.row(bench);
        double ipc[3], fipc[3];
        for (std::size_t n = 0; n < nets.size(); ++n) {
            const SimResult &rb =
                runs.at(bench, std::string(nets[n].label) + "/base");
            const SimResult &rf =
                runs.at(bench, std::string(nets[n].label) + "/fdrt");
            ipc[n] = rb.ipc();
            fipc[n] = rf.ipc();
            base_ipc[n] += rb.ipc();
            fdrt_ipc[n] += rf.ipc();
        }
        for (double v : ipc)
            table.cell(v, 3);
        for (double v : fipc)
            table.cell(v, 3);
    }
    table.row("Mean");
    for (double v : base_ipc)
        table.cell(v / 6.0, 3);
    for (double v : fdrt_ipc)
        table.cell(v / 6.0, 3);
    std::printf("%s", table.render().c_str());
    return 0;
}
