/**
 * @file
 * Simulator throughput harness: measures host-side performance of the
 * simulator itself (not the simulated machine) on the Figure 6
 * workload mix — six benchmarks x five cluster-assignment configs —
 * and writes BENCH_throughput.json so successive PRs can track the
 * perf trajectory.
 *
 * Three modes are measured:
 *   tracing_off       — the default experiment configuration
 *   tracing_filtered  — observability tracing enabled with a
 *                       retire-only filter (the cheap always-on shape)
 *   accounting_on     — per-slot cycle accounting enabled
 *                       (--accounting); its overhead budget is <= 10%
 *                       over tracing_off
 *
 * Usage: perf_throughput [budget] [jobs] [out.json]
 *   budget  instructions per run (default 300000)
 *   jobs    campaign workers (default 1: serial, the stable number)
 *   out     output path (default BENCH_throughput.json)
 */

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.hh"

namespace {

using namespace ctcp;
using namespace ctcp::bench;

std::vector<campaign::Job>
fig6Jobs(std::uint64_t budget)
{
    struct Mode
    {
        const char *label;
        AssignStrategy strategy;
        unsigned issueLatency;
    };
    const std::vector<Mode> modes = {
        {"base", AssignStrategy::BaseSlotOrder, 0},
        {"no-lat-issue", AssignStrategy::IssueTime, 0},
        {"issue-time", AssignStrategy::IssueTime, 4},
        {"fdrt", AssignStrategy::Fdrt, 0},
        {"friendly", AssignStrategy::Friendly, 0},
    };
    std::vector<campaign::Job> jobs;
    for (const std::string &bench : selectedSix()) {
        for (const Mode &m : modes) {
            SimConfig cfg = withStrategy(baseConfig(), m.strategy,
                                         m.issueLatency);
            cfg.instructionLimit = budget;
            jobs.push_back(campaign::makeJob(
                bench + "/" + std::string(m.label), bench,
                std::move(cfg)));
        }
    }
    return jobs;
}

struct ModeResult
{
    std::string name;
    std::size_t runs = 0;
    std::uint64_t simInstructions = 0;
    /** Wall seconds for the whole campaign (what a user waits for). */
    double wallSeconds = 0.0;
    /** Sum of per-job host seconds (robust to worker count). */
    double jobHostSeconds = 0.0;

    double
    instsPerSecond() const
    {
        return jobHostSeconds > 0.0
            ? static_cast<double>(simInstructions) / jobHostSeconds
            : 0.0;
    }
};

ModeResult
runMode(const std::string &name, std::uint64_t budget,
        const campaign::Options &options)
{
    const std::vector<campaign::Job> matrix = fig6Jobs(budget);
    const auto start = std::chrono::steady_clock::now();
    const campaign::Report report = campaign::runCampaign(matrix, options);
    const double wall = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();

    ModeResult mode;
    mode.name = name;
    mode.wallSeconds = wall;
    for (const campaign::JobOutcome &out : report.jobs) {
        if (!out.ok())
            ctcp_fatal("perf job '%s' failed: %s", out.label.c_str(),
                       out.error.c_str());
        ++mode.runs;
        mode.simInstructions += out.result.instructions;
        mode.jobHostSeconds += out.result.hostSeconds;
    }
    std::printf("%-16s %3zu runs  %9llu insts  %7.3fs wall  "
                "%7.3fs jobs  %10.0f insts/s\n",
                name.c_str(), mode.runs,
                static_cast<unsigned long long>(mode.simInstructions),
                mode.wallSeconds, mode.jobHostSeconds,
                mode.instsPerSecond());
    return mode;
}

std::string
modeJson(const ModeResult &m, bool last)
{
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\n"
                  "      \"name\": \"%s\",\n"
                  "      \"runs\": %zu,\n"
                  "      \"sim_instructions\": %llu,\n"
                  "      \"wall_seconds\": %.6f,\n"
                  "      \"job_host_seconds\": %.6f,\n"
                  "      \"sim_insts_per_host_second\": %.1f\n"
                  "    }%s\n",
                  m.name.c_str(), m.runs,
                  static_cast<unsigned long long>(m.simInstructions),
                  m.wallSeconds, m.jobHostSeconds, m.instsPerSecond(),
                  last ? "" : ",");
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t budget = budgetFromArgs(argc, argv);
    // Serial by default: throughput numbers should not depend on how
    // many cores the measuring machine happens to have.
    unsigned jobs = 1;
    if (argc > 2)
        jobs = static_cast<unsigned>(std::strtoul(argv[2], nullptr, 10));
    if (jobs == 0)
        jobs = 1;
    const std::string out_path =
        argc > 3 ? argv[3] : "BENCH_throughput.json";

    banner("Simulator throughput (host-side)",
           "fig6 workload mix; sim-insts per host second", budget);

    campaign::Options plain;
    plain.jobs = jobs;
    const ModeResult off = runMode("tracing_off", budget, plain);

    // Tracing on, filtered down to retire events: the configuration a
    // user keeps enabled while still caring about simulator speed.
    namespace fs = std::filesystem;
    const fs::path trace_dir = fs::temp_directory_path() /
        ("ctcp_perf_traces_" + std::to_string(
            static_cast<unsigned long long>(budget)));
    fs::create_directories(trace_dir);
    campaign::Options traced = plain;
    traced.traceEventsDir = trace_dir.string();
    traced.traceFilter = "retire";
    const ModeResult filtered =
        runMode("tracing_filtered", budget, traced);
    fs::remove_all(trace_dir);

    // Cycle accounting on: the bottleneck-attribution layer the HTML
    // reports are built from. Its cost over tracing_off is the number
    // the <= 10% overhead budget is judged against.
    campaign::Options counted = plain;
    counted.accounting = true;
    const ModeResult accounted =
        runMode("accounting_on", budget, counted);
    if (off.instsPerSecond() > 0.0)
        std::printf("accounting overhead: %.1f%%\n",
                    100.0 * (off.instsPerSecond() -
                             accounted.instsPerSecond()) /
                        off.instsPerSecond());

    std::string json = "{\n";
    json += "  \"harness\": \"perf_throughput\",\n";
    json += "  \"workload\": \"fig6-mix\",\n";
    json += "  \"budget_per_run\": " + std::to_string(budget) + ",\n";
    json += "  \"jobs\": " + std::to_string(jobs) + ",\n";
    json += "  \"modes\": [\n";
    json += modeJson(off, false);
    json += modeJson(filtered, false);
    json += modeJson(accounted, true);
    json += "  ]\n}\n";

    FILE *f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr)
        ctcp_fatal("cannot write '%s'", out_path.c_str());
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path.c_str());
    return 0;
}
