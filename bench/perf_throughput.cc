/**
 * @file
 * Simulator throughput harness: measures host-side performance of the
 * simulator itself (not the simulated machine) on the Figure 6
 * workload mix — six benchmarks x five cluster-assignment configs —
 * and writes BENCH_throughput.json so successive PRs can track the
 * perf trajectory.
 *
 * Three modes are measured:
 *   tracing_off       — the default experiment configuration
 *   tracing_filtered  — observability tracing enabled with a
 *                       retire-only filter (the cheap always-on shape)
 *   accounting_on     — per-slot cycle accounting enabled
 *                       (--accounting); its overhead budget is <= 10%
 *                       over tracing_off
 *
 * Each mode runs one discarded warmup campaign (page cache, branch
 * predictors, allocator arenas) followed by `reps` measured campaigns;
 * the headline sim_insts_per_host_second is the median across reps,
 * with the mean reported alongside so outliers are visible.
 *
 * If the output file already exists, its `history` entries are carried
 * forward and a new timestamped entry is appended, so the checked-in
 * BENCH_throughput.json accumulates the perf trajectory across PRs.
 * The latest numbers always stay in the top-level `modes` array.
 *
 * Usage: perf_throughput [budget] [jobs] [out.json] [reps]
 *   budget  instructions per run (default 300000)
 *   jobs    campaign workers (default 1: serial, the stable number)
 *   out     output path (default BENCH_throughput.json)
 *   reps    measured campaigns per mode after warmup (default 3)
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "common/json.hh"

namespace {

using namespace ctcp;
using namespace ctcp::bench;

std::vector<campaign::Job>
fig6Jobs(std::uint64_t budget)
{
    struct Mode
    {
        const char *label;
        AssignStrategy strategy;
        unsigned issueLatency;
    };
    const std::vector<Mode> modes = {
        {"base", AssignStrategy::BaseSlotOrder, 0},
        {"no-lat-issue", AssignStrategy::IssueTime, 0},
        {"issue-time", AssignStrategy::IssueTime, 4},
        {"fdrt", AssignStrategy::Fdrt, 0},
        {"friendly", AssignStrategy::Friendly, 0},
    };
    std::vector<campaign::Job> jobs;
    for (const std::string &bench : selectedSix()) {
        for (const Mode &m : modes) {
            SimConfig cfg = withStrategy(baseConfig(), m.strategy,
                                         m.issueLatency);
            cfg.instructionLimit = budget;
            jobs.push_back(campaign::makeJob(
                bench + "/" + std::string(m.label), bench,
                std::move(cfg)));
        }
    }
    return jobs;
}

/** One measured campaign execution. */
struct RepResult
{
    std::uint64_t simInstructions = 0;
    double wallSeconds = 0.0;
    double jobHostSeconds = 0.0;

    double
    instsPerSecond() const
    {
        return jobHostSeconds > 0.0
            ? static_cast<double>(simInstructions) / jobHostSeconds
            : 0.0;
    }
};

struct ModeResult
{
    std::string name;
    std::size_t runs = 0;
    std::uint64_t simInstructions = 0;
    std::vector<RepResult> reps;

    double
    medianInstsPerSecond() const
    {
        std::vector<double> rates;
        rates.reserve(reps.size());
        for (const RepResult &r : reps)
            rates.push_back(r.instsPerSecond());
        std::sort(rates.begin(), rates.end());
        if (rates.empty())
            return 0.0;
        const std::size_t n = rates.size();
        return n % 2 == 1 ? rates[n / 2]
                          : 0.5 * (rates[n / 2 - 1] + rates[n / 2]);
    }

    double
    meanInstsPerSecond() const
    {
        if (reps.empty())
            return 0.0;
        double sum = 0.0;
        for (const RepResult &r : reps)
            sum += r.instsPerSecond();
        return sum / static_cast<double>(reps.size());
    }

    /** Mean wall seconds across measured reps. */
    double
    meanWallSeconds() const
    {
        if (reps.empty())
            return 0.0;
        double sum = 0.0;
        for (const RepResult &r : reps)
            sum += r.wallSeconds;
        return sum / static_cast<double>(reps.size());
    }

    /** Mean per-job host seconds across measured reps. */
    double
    meanJobHostSeconds() const
    {
        if (reps.empty())
            return 0.0;
        double sum = 0.0;
        for (const RepResult &r : reps)
            sum += r.jobHostSeconds;
        return sum / static_cast<double>(reps.size());
    }
};

RepResult
runOnce(const std::string &name, const std::vector<campaign::Job> &matrix,
        const campaign::Options &options, std::size_t *runs_out)
{
    const auto start = std::chrono::steady_clock::now();
    const campaign::Report report = campaign::runCampaign(matrix, options);
    RepResult rep;
    rep.wallSeconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();
    std::size_t runs = 0;
    for (const campaign::JobOutcome &out : report.jobs) {
        if (!out.ok())
            ctcp_fatal("perf job '%s' failed: %s", out.label.c_str(),
                       out.error.c_str());
        ++runs;
        rep.simInstructions += out.result.instructions;
        rep.jobHostSeconds += out.result.hostSeconds;
    }
    if (runs_out != nullptr)
        *runs_out = runs;
    (void)name;
    return rep;
}

ModeResult
runMode(const std::string &name, std::uint64_t budget,
        const campaign::Options &options, unsigned reps)
{
    const std::vector<campaign::Job> matrix = fig6Jobs(budget);

    // Warmup campaign: first-touch costs (page cache, lazily built
    // workload programs, allocator growth) land here, not in a
    // measured rep. Discarded.
    runOnce(name, matrix, options, nullptr);

    ModeResult mode;
    mode.name = name;
    for (unsigned r = 0; r < reps; ++r) {
        std::size_t runs = 0;
        const RepResult rep = runOnce(name, matrix, options, &runs);
        mode.runs = runs;
        mode.simInstructions = rep.simInstructions;
        mode.reps.push_back(rep);
        std::printf("%-16s rep %u/%u  %9llu insts  %7.3fs wall  "
                    "%7.3fs jobs  %10.0f insts/s\n",
                    name.c_str(), r + 1, reps,
                    static_cast<unsigned long long>(rep.simInstructions),
                    rep.wallSeconds, rep.jobHostSeconds,
                    rep.instsPerSecond());
    }
    std::printf("%-16s median %10.0f insts/s  mean %10.0f insts/s\n",
                name.c_str(), mode.medianInstsPerSecond(),
                mode.meanInstsPerSecond());
    return mode;
}

std::string
modeJson(const ModeResult &m, bool last)
{
    char buf[768];
    std::snprintf(buf, sizeof(buf),
                  "    {\n"
                  "      \"name\": \"%s\",\n"
                  "      \"runs\": %zu,\n"
                  "      \"reps\": %zu,\n"
                  "      \"sim_instructions\": %llu,\n"
                  "      \"wall_seconds\": %.6f,\n"
                  "      \"job_host_seconds\": %.6f,\n"
                  "      \"sim_insts_per_host_second\": %.1f,\n"
                  "      \"median_insts_per_second\": %.1f,\n"
                  "      \"mean_insts_per_second\": %.1f\n"
                  "    }%s\n",
                  m.name.c_str(), m.runs, m.reps.size(),
                  static_cast<unsigned long long>(m.simInstructions),
                  m.meanWallSeconds(), m.meanJobHostSeconds(),
                  m.medianInstsPerSecond(), m.medianInstsPerSecond(),
                  m.meanInstsPerSecond(), last ? "" : ",");
    return buf;
}

/** Re-serialize a parsed JSON value (round-trips our own output). */
void
writeValue(std::ostringstream &out, const json::Value &v)
{
    using Kind = json::Value::Kind;
    switch (v.kind) {
      case Kind::Null:
        out << "null";
        break;
      case Kind::Bool:
        out << (v.boolean ? "true" : "false");
        break;
      case Kind::Number:
        out << v.number;   // raw text: exact round-trip
        break;
      case Kind::String:
        out << '"';
        for (char c : v.string) {
            if (c == '"' || c == '\\')
                out << '\\';
            out << c;
        }
        out << '"';
        break;
      case Kind::Array: {
        out << '[';
        bool first = true;
        for (const json::Value &e : v.array) {
            if (!first)
                out << ", ";
            first = false;
            writeValue(out, e);
        }
        out << ']';
        break;
      }
      case Kind::Object: {
        out << '{';
        bool first = true;
        for (const auto &[key, val] : v.object) {
            if (!first)
                out << ", ";
            first = false;
            out << '"' << key << "\": ";
            writeValue(out, val);
        }
        out << '}';
        break;
      }
    }
}

/** Prior state recovered from an existing output file. */
struct PriorBench
{
    /** Compact one-line JSON per carried-forward history entry. */
    std::vector<std::string> historyLines;
    /** Most recent tracing_off rate on record (0 = none). */
    double lastTracingOff = 0.0;
    std::string lastTimestamp;
};

double
modeRate(const json::Value &doc, const std::string &mode_name)
{
    const json::Value *modes = doc.find("modes");
    if (modes == nullptr || !modes->isArray())
        return 0.0;
    for (const json::Value &m : modes->array) {
        if (m.str("name") == mode_name)
            return m.num("sim_insts_per_host_second");
    }
    return 0.0;
}

PriorBench
loadPrior(const std::string &path)
{
    PriorBench prior;
    std::ifstream in(path);
    if (!in)
        return prior;
    std::ostringstream text;
    text << in.rdbuf();
    json::Value doc;
    try {
        doc = json::parse(text.str());
    } catch (const std::exception &e) {
        std::printf("note: ignoring unparsable %s (%s)\n", path.c_str(),
                    e.what());
        return prior;
    }

    const json::Value *history = doc.find("history");
    if (history != nullptr && history->isArray()) {
        for (const json::Value &entry : history->array) {
            std::ostringstream line;
            writeValue(line, entry);
            prior.historyLines.push_back(line.str());
            prior.lastTracingOff = entry.num("tracing_off");
            prior.lastTimestamp = entry.str("timestamp");
        }
    }
    // A pre-history file (written before the history array existed)
    // still holds one measurement in its top-level modes; synthesize a
    // history entry from it so the old record survives the upgrade.
    const double top = modeRate(doc, "tracing_off");
    if (top > 0.0) {
        prior.lastTracingOff = top;
        if (const json::Value *ts = doc.find("generated_at");
            ts != nullptr && ts->isString())
            prior.lastTimestamp = ts->string;
        if (prior.historyLines.empty()) {
            char line[512];
            std::snprintf(line, sizeof(line),
                          "{\"timestamp\": \"%s\", "
                          "\"budget_per_run\": %.0f, \"jobs\": %.0f, "
                          "\"tracing_off\": %.1f, "
                          "\"tracing_filtered\": %.1f, "
                          "\"accounting_on\": %.1f}",
                          prior.lastTimestamp.empty()
                              ? "pre-history"
                              : prior.lastTimestamp.c_str(),
                          doc.num("budget_per_run"), doc.num("jobs"),
                          top, modeRate(doc, "tracing_filtered"),
                          modeRate(doc, "accounting_on"));
            prior.historyLines.emplace_back(line);
        }
    }
    return prior;
}

std::string
isoTimestampUtc()
{
    const std::time_t now =
        std::chrono::system_clock::to_time_t(
            std::chrono::system_clock::now());
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

std::string
historyEntry(const std::string &timestamp, std::uint64_t budget,
             unsigned jobs, const ModeResult &off,
             const ModeResult &filtered, const ModeResult &accounted)
{
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "{\"timestamp\": \"%s\", \"budget_per_run\": %llu, "
                  "\"jobs\": %u, \"tracing_off\": %.1f, "
                  "\"tracing_filtered\": %.1f, \"accounting_on\": %.1f}",
                  timestamp.c_str(),
                  static_cast<unsigned long long>(budget), jobs,
                  off.medianInstsPerSecond(),
                  filtered.medianInstsPerSecond(),
                  accounted.medianInstsPerSecond());
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t budget = budgetFromArgs(argc, argv);
    // Serial by default: throughput numbers should not depend on how
    // many cores the measuring machine happens to have.
    unsigned jobs = 1;
    if (argc > 2)
        jobs = static_cast<unsigned>(std::strtoul(argv[2], nullptr, 10));
    if (jobs == 0)
        jobs = 1;
    const std::string out_path =
        argc > 3 ? argv[3] : "BENCH_throughput.json";
    unsigned reps = 3;
    if (argc > 4)
        reps = static_cast<unsigned>(std::strtoul(argv[4], nullptr, 10));
    if (reps == 0)
        reps = 1;

    banner("Simulator throughput (host-side)",
           "fig6 workload mix; sim-insts per host second", budget);
    std::printf("per mode: 1 warmup campaign (discarded) + %u measured\n\n",
                reps);

    const PriorBench prior = loadPrior(out_path);

    campaign::Options plain;
    plain.jobs = jobs;
    const ModeResult off = runMode("tracing_off", budget, plain, reps);

    // Tracing on, filtered down to retire events: the configuration a
    // user keeps enabled while still caring about simulator speed.
    namespace fs = std::filesystem;
    const fs::path trace_dir = fs::temp_directory_path() /
        ("ctcp_perf_traces_" + std::to_string(
            static_cast<unsigned long long>(budget)));
    fs::create_directories(trace_dir);
    campaign::Options traced = plain;
    traced.traceEventsDir = trace_dir.string();
    traced.traceFilter = "retire";
    const ModeResult filtered =
        runMode("tracing_filtered", budget, traced, reps);
    fs::remove_all(trace_dir);

    // Cycle accounting on: the bottleneck-attribution layer the HTML
    // reports are built from. Its cost over tracing_off is the number
    // the <= 10% overhead budget is judged against.
    campaign::Options counted = plain;
    counted.accounting = true;
    const ModeResult accounted =
        runMode("accounting_on", budget, counted, reps);
    if (off.medianInstsPerSecond() > 0.0)
        std::printf("accounting overhead: %.1f%%\n",
                    100.0 * (off.medianInstsPerSecond() -
                             accounted.medianInstsPerSecond()) /
                        off.medianInstsPerSecond());

    if (prior.lastTracingOff > 0.0) {
        std::printf("tracing_off vs previous entry%s%s: %.2fx "
                    "(%.0f -> %.0f insts/s)\n",
                    prior.lastTimestamp.empty() ? "" : " of ",
                    prior.lastTimestamp.c_str(),
                    off.medianInstsPerSecond() / prior.lastTracingOff,
                    prior.lastTracingOff, off.medianInstsPerSecond());
    }

    const std::string timestamp = isoTimestampUtc();

    std::string json = "{\n";
    json += "  \"harness\": \"perf_throughput\",\n";
    json += "  \"workload\": \"fig6-mix\",\n";
    json += "  \"generated_at\": \"" + timestamp + "\",\n";
    json += "  \"budget_per_run\": " + std::to_string(budget) + ",\n";
    json += "  \"jobs\": " + std::to_string(jobs) + ",\n";
    json += "  \"modes\": [\n";
    json += modeJson(off, false);
    json += modeJson(filtered, false);
    json += modeJson(accounted, true);
    json += "  ],\n";
    json += "  \"history\": [\n";
    for (const std::string &line : prior.historyLines)
        json += "    " + line + ",\n";
    json += "    " +
        historyEntry(timestamp, budget, jobs, off, filtered, accounted) +
        "\n";
    json += "  ]\n}\n";

    FILE *f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr)
        ctcp_fatal("cannot write '%s'", out_path.c_str());
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path.c_str());
    return 0;
}
