/**
 * @file
 * Table 8 — data forwarding for critical inputs under Base, Friendly
 * and FDRT assignment: (a) the percentage of critical forwarded inputs
 * satisfied within the consumer's own cluster, and (b) the mean number
 * of clusters the forwarded data traverses.
 *
 * Paper values: intra-cluster avg Base 39.7% / Friendly 56.9% /
 * FDRT 61.6%; mean distance avg Base 1.33 / Friendly 1.04(approx) /
 * FDRT shorter than Friendly on every benchmark.
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace ctcp;
    using namespace ctcp::bench;

    const std::uint64_t budget = budgetFromArgs(argc, argv);
    banner("Table 8: Data Forwarding For Critical Inputs",
           "intra-cluster avg: base 39.7, friendly 56.9, fdrt 61.6; "
           "fdrt always shortens distance",
           budget);

    const std::vector<std::pair<const char *, AssignStrategy>> modes = {
        {"Base", AssignStrategy::BaseSlotOrder},
        {"Friendly", AssignStrategy::Friendly},
        {"FDRT", AssignStrategy::Fdrt},
    };

    TextTable intra({"benchmark", "Base", "Friendly", "FDRT"});
    TextTable dist({"benchmark", "Base", "Friendly", "FDRT"});
    std::vector<double> sum_intra(3, 0.0), sum_dist(3, 0.0);
    for (const std::string &bench : selectedSix()) {
        intra.row(bench);
        dist.row(bench);
        for (std::size_t m = 0; m < modes.size(); ++m) {
            const SimResult r = simulate(
                bench, withStrategy(baseConfig(), modes[m].second), budget);
            intra.percentCell(r.pctIntraClusterFwd);
            dist.cell(r.meanFwdDistance, 3);
            sum_intra[m] += r.pctIntraClusterFwd;
            sum_dist[m] += r.meanFwdDistance;
        }
    }
    intra.row("Average");
    dist.row("Average");
    for (std::size_t m = 0; m < modes.size(); ++m) {
        intra.percentCell(sum_intra[m] / 6.0);
        dist.cell(sum_dist[m] / 6.0, 3);
    }

    std::printf("a. Percentage of Intra-Cluster Forwarding\n%s\n",
                intra.render().c_str());
    std::printf("b. Average Data Forwarding Distance\n%s",
                dist.render().c_str());
    return 0;
}
