/**
 * @file
 * Ablation of the fill-unit latency: how long can trace construction
 * (and therefore FDRT's retire-time analysis) take before performance
 * suffers?
 *
 * Paper reference (Section 4): "Previously, a fill unit latency of up
 * to 10 cycles was shown to have negligible effects on overall
 * performance. In our environment, simulations have shown that a
 * latency of 1000 cycles does not significantly impact FDRT
 * performance." This tolerance is what makes retire-time assignment
 * attractive: the expensive analysis sits completely off the critical
 * path.
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace ctcp;
    using namespace ctcp::bench;

    const std::uint64_t budget = budgetFromArgs(argc, argv);
    banner("Ablation: fill-unit latency tolerance (FDRT)",
           "even 1000 cycles of fill latency barely matters (Section 4)",
           budget);

    const std::vector<unsigned> latencies = {0u, 10u, 100u, 1000u,
                                             10000u};
    MatrixHarness runs(budget, jobsFromArgs(argc, argv));
    for (unsigned latency : latencies) {
        for (const std::string &bench : selectedSix()) {
            SimConfig cfg = baseConfig();
            cfg.assign.strategy = AssignStrategy::Fdrt;
            cfg.frontEnd.traceCache.fillLatency = latency;
            runs.add(bench, cfg, std::to_string(latency));
        }
    }
    runs.run();

    TextTable table({"fill latency", "mean FDRT IPC", "vs 0-latency",
                     "% from TC"});
    double ref_ipc = 0.0;
    for (unsigned latency : latencies) {
        double ipc = 0, pct = 0;
        for (const std::string &bench : selectedSix()) {
            const SimResult &r =
                runs.at(bench, std::to_string(latency));
            ipc += r.ipc();
            pct += r.pctFromTraceCache;
        }
        ipc /= 6.0;
        pct /= 6.0;
        if (latency == 0)
            ref_ipc = ipc;
        table.row(std::to_string(latency))
            .cell(ipc, 3)
            .cell(ipc / ref_ipc, 4)
            .percentCell(pct / 1.0);
    }
    std::printf("%s", table.render().c_str());
    return 0;
}
