/**
 * @file
 * Figure 9 — mean cluster-assignment speedups over the full suites:
 * all 12 SPECint2000 analogues and all 14 MediaBench analogues, for
 * no-latency issue-time, 4-cycle issue-time, FDRT and Friendly.
 *
 * Paper values (harmonic means): SPECint FDRT +7.1%, issue-time
 * +3.8%, Friendly +1.9%; MediaBench FDRT +8.2%, no-lat issue-time
 * +4.2%, issue-time +1.7%, Friendly +3.7%. Notably FDRT beats even
 * latency-free issue-time on MediaBench and slows nothing down.
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace ctcp;
    using namespace ctcp::bench;

    // Full-suite sweep: keep the default budget modest.
    const std::uint64_t budget = budgetFromArgs(argc, argv, 200'000);
    banner("Figure 9: Suite-wide Cluster Assignment Speedups",
           "HM SPECint: fdrt 1.071, issue 1.038, friendly 1.019; "
           "MediaBench: fdrt 1.082, no-lat issue 1.042",
           budget);

    struct Mode
    {
        const char *label;
        AssignStrategy strategy;
        unsigned issueLatency;
    };
    const std::vector<Mode> modes = {
        {"No-lat Issue", AssignStrategy::IssueTime, 0},
        {"Issue-time", AssignStrategy::IssueTime, 4},
        {"FDRT", AssignStrategy::Fdrt, 0},
        {"Friendly", AssignStrategy::Friendly, 0},
    };

    MatrixHarness runs(budget, jobsFromArgs(argc, argv));
    for (auto suite : {workloads::Suite::SpecInt, workloads::Suite::Media}) {
        for (const std::string &bench : workloads::names(suite)) {
            runs.add(bench, baseConfig(), "base");
            for (const Mode &m : modes)
                runs.add(bench,
                         withStrategy(baseConfig(), m.strategy,
                                      m.issueLatency),
                         m.label);
        }
    }
    runs.run();

    for (auto suite : {workloads::Suite::SpecInt, workloads::Suite::Media}) {
        const char *suite_name =
            suite == workloads::Suite::SpecInt ? "All SPECint2000"
                                               : "MediaBench";
        std::printf("-- %s --\n", suite_name);
        TextTable table({"benchmark", "No-lat Issue", "Issue-time", "FDRT",
                         "Friendly"});
        std::vector<std::vector<double>> speedups(modes.size());
        for (const std::string &bench : workloads::names(suite)) {
            const SimResult &base = runs.at(bench, "base");
            table.row(bench);
            for (std::size_t m = 0; m < modes.size(); ++m) {
                const SimResult &r = runs.at(bench, modes[m].label);
                const double speedup = static_cast<double>(base.cycles) /
                    static_cast<double>(r.cycles);
                table.cell(speedup, 3);
                speedups[m].push_back(speedup);
            }
        }
        table.row("HM");
        for (std::size_t m = 0; m < modes.size(); ++m)
            table.cell(harmonicMean(speedups[m]), 3);
        std::printf("%s\n", table.render().c_str());
    }
    return 0;
}
