/**
 * @file
 * Table 1 — trace cache characteristics of the base machine:
 * percentage of retired instructions fetched from the trace cache and
 * the mean trace-line size, per benchmark.
 *
 * Paper values: %TCInstr 80.4-92.4 (avg 88.3), trace size 12.9-13.8
 * (avg 13.2).
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace ctcp;
    using namespace ctcp::bench;

    const std::uint64_t budget = budgetFromArgs(argc, argv);
    banner("Table 1: Trace Cache Characteristics",
           "%TCInstr avg 88.3 (80.4..92.4); trace size avg 13.2",
           budget);

    TextTable table({"benchmark", "% TC Instr", "Trace Size"});
    double sum_pct = 0.0, sum_size = 0.0;
    for (const std::string &bench : selectedSix()) {
        const SimResult r = simulate(bench, baseConfig(), budget);
        table.row(bench)
            .cell(r.pctFromTraceCache, 2)
            .cell(r.meanTraceSize, 2);
        sum_pct += r.pctFromTraceCache;
        sum_size += r.meanTraceSize;
    }
    table.row("Avg")
        .cell(sum_pct / 6.0, 2)
        .cell(sum_size / 6.0, 2);
    std::printf("%s", table.render().c_str());
    return 0;
}
