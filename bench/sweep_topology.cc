/**
 * @file
 * Design-space sweep — every interconnect topology crossed with every
 * assignment strategy on the paper's six-benchmark mix, plus a
 * cluster-count scaling section (2/4/8 four-wide clusters on the
 * linear chain). Speedups are relative to each machine's own
 * base-slot-order run, so the table isolates the steering policy from
 * the interconnect.
 *
 * Expected shape: the crossbar compresses the spread between
 * strategies (forwarding is cheap everywhere, so placement matters
 * less), the bus and linear chain widen it, and the phase-adaptive
 * strategy tracks the best static policy closely enough to beat the
 * worst one on every topology.
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace ctcp;
    using namespace ctcp::bench;

    const std::uint64_t budget = budgetFromArgs(argc, argv);
    banner("Design Space: Topology x Assignment Strategy",
           "section 5 machine variants generalised to five "
           "interconnects and 2/4/8-cluster machines",
           budget);

    const Topology topologies[5] = {
        Topology::LinearChain, Topology::Ring, Topology::Crossbar,
        Topology::Hierarchical, Topology::Bus};
    const AssignStrategy strategies[4] = {
        AssignStrategy::Friendly, AssignStrategy::Fdrt,
        AssignStrategy::IssueTime, AssignStrategy::Adaptive};
    const char *strategy_tags[4] = {"friendly", "fdrt", "issue-time",
                                    "adaptive"};
    const unsigned cluster_counts[3] = {2, 4, 8};

    MatrixHarness runs(budget, jobsFromArgs(argc, argv));
    for (const Topology topo : topologies) {
        for (const std::string &bench : selectedSix()) {
            SimConfig base = baseConfig();
            base.cluster.topology = topo;
            runs.add(bench, base,
                     std::string(topologyName(topo)) + "/base");
            for (int m = 0; m < 4; ++m) {
                SimConfig cfg = base;
                cfg.assign.strategy = strategies[m];
                runs.add(bench, cfg,
                         std::string(topologyName(topo)) + "/" +
                             strategy_tags[m]);
            }
        }
    }
    for (const unsigned n : cluster_counts) {
        for (const std::string &bench : selectedSix()) {
            SimConfig base = baseConfig();
            applyMachineScale(base, n, base.cluster.clusterWidth);
            runs.add(bench, base,
                     "c" + std::to_string(n) + "/base");
            for (int m = 0; m < 4; ++m) {
                SimConfig cfg = base;
                cfg.assign.strategy = strategies[m];
                runs.add(bench, cfg,
                         "c" + std::to_string(n) + "/" +
                             strategy_tags[m]);
            }
        }
    }
    runs.run();

    auto speedupTable = [&](const std::string &prefix) {
        TextTable table({"benchmark", "Friendly", "FDRT", "Issue-time",
                         "Adaptive"});
        std::vector<std::vector<double>> speedups(4);
        for (const std::string &bench : selectedSix()) {
            const SimResult &base = runs.at(bench, prefix + "/base");
            table.row(bench);
            for (int m = 0; m < 4; ++m) {
                const SimResult &r =
                    runs.at(bench, prefix + "/" + strategy_tags[m]);
                const double speedup = static_cast<double>(base.cycles) /
                    static_cast<double>(r.cycles);
                table.cell(speedup, 3);
                speedups[static_cast<std::size_t>(m)].push_back(speedup);
            }
        }
        table.row("HM");
        for (auto &s : speedups)
            table.cell(harmonicMean(s), 3);
        std::printf("%s\n", table.render().c_str());
    };

    for (const Topology topo : topologies) {
        std::printf("-- topology: %s (4 clusters x 4-wide) --\n",
                    topologyName(topo));
        speedupTable(topologyName(topo));
    }
    for (const unsigned n : cluster_counts) {
        std::printf("-- linear chain, %u clusters x 4-wide --\n", n);
        speedupTable("c" + std::to_string(n));
    }

    // Adaptive safety-net summary: on how many (topology, benchmark)
    // points does the phase-adaptive chooser beat the WORST static
    // strategy? This is its contract — it need not win outright, but
    // it must never be the policy you regret picking.
    unsigned points = 0, adaptive_wins = 0, outright_wins = 0;
    for (const Topology topo : topologies) {
        for (const std::string &bench : selectedSix()) {
            const std::string prefix = topologyName(topo);
            std::uint64_t worst = 0, best = ~std::uint64_t{0};
            for (const char *tag :
                 {"base", "friendly", "fdrt", "issue-time"}) {
                const std::uint64_t c =
                    runs.at(bench, prefix + "/" + std::string(tag))
                        .cycles;
                worst = std::max(worst, c);
                best = std::min(best, c);
            }
            const std::uint64_t adaptive =
                runs.at(bench, prefix + "/adaptive").cycles;
            ++points;
            if (adaptive < worst)
                ++adaptive_wins;
            if (adaptive <= best)
                ++outright_wins;
        }
    }
    std::printf("adaptive beats the worst static strategy on %u/%u "
                "(topology x benchmark) points and matches or beats "
                "the best on %u/%u\n",
                adaptive_wins, points, outright_wins, points);
    return 0;
}
