/**
 * @file
 * Figure 6 — execution-time speedup over the base slot-order machine
 * for the dynamic cluster-assignment strategies: idealized
 * (zero-latency) issue-time steering, realistic 4-cycle issue-time
 * steering, FDRT, and Friendly's retire-time reordering.
 *
 * Paper values (harmonic means over the six selected SPECint):
 * No-lat issue-time +17.2%, issue-time(4) ~= FDRT, FDRT +11.5%,
 * Friendly +3.1%. bzip2 is the one benchmark where FDRT beats even
 * the idealized issue-time steering.
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace ctcp;
    using namespace ctcp::bench;

    const std::uint64_t budget = budgetFromArgs(argc, argv);
    banner("Figure 6: Speedup Due to Cluster Assignment Strategy",
           "HM: no-lat issue 1.172, FDRT 1.115, issue-4 ~1.11, "
           "Friendly 1.031",
           budget);

    struct Mode
    {
        const char *label;
        AssignStrategy strategy;
        unsigned issueLatency;
    };
    const std::vector<Mode> modes = {
        {"No-lat Issue", AssignStrategy::IssueTime, 0},
        {"Issue-time", AssignStrategy::IssueTime, 4},
        {"FDRT", AssignStrategy::Fdrt, 0},
        {"Friendly", AssignStrategy::Friendly, 0},
    };

    MatrixHarness runs(budget, jobsFromArgs(argc, argv));
    for (const std::string &bench : selectedSix()) {
        runs.add(bench, baseConfig(), "base");
        for (const Mode &m : modes)
            runs.add(bench,
                     withStrategy(baseConfig(), m.strategy,
                                  m.issueLatency),
                     m.label);
    }
    runs.run();

    TextTable table({"benchmark", "No-lat Issue", "Issue-time", "FDRT",
                     "Friendly"});
    std::vector<std::vector<double>> speedups(modes.size());
    for (const std::string &bench : selectedSix()) {
        const SimResult &base = runs.at(bench, "base");
        table.row(bench);
        for (std::size_t m = 0; m < modes.size(); ++m) {
            const SimResult &r = runs.at(bench, modes[m].label);
            const double speedup = static_cast<double>(base.cycles) /
                static_cast<double>(r.cycles);
            table.cell(speedup, 3);
            speedups[m].push_back(speedup);
        }
    }
    table.row("HM");
    for (std::size_t m = 0; m < modes.size(); ++m)
        table.cell(harmonicMean(speedups[m]), 3);
    std::printf("%s", table.render().c_str());
    return 0;
}
