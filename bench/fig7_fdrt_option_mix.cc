/**
 * @file
 * Figure 7 — distribution of FDRT assignment options (Table 5): A
 * (critical intra-trace producer only), B (inter-trace chain member
 * only), C (both), D (producer with an intra-trace consumer only), E
 * (no identifiable relations), plus instructions skipped because no
 * nearby slot was free.
 *
 * Paper values (averages): A 37%, B 18%, C 9%, D 11%, E ~24%,
 * skipped <1%.
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace ctcp;
    using namespace ctcp::bench;

    const std::uint64_t budget = budgetFromArgs(argc, argv);
    banner("Figure 7: FDRT Critical Input Distribution (options A-E)",
           "averages: A 37, B 18, C 9, D 11, E 24, skipped <1",
           budget);

    TextTable table({"benchmark", "A intra", "B chain", "C both",
                     "D consumer", "E none", "skipped"});
    double sums[6] = {0, 0, 0, 0, 0, 0};
    for (const std::string &bench : selectedSix()) {
        const SimResult r = simulate(
            bench, withStrategy(baseConfig(), AssignStrategy::Fdrt),
            budget);
        table.row(bench)
            .percentCell(r.pctOptionA)
            .percentCell(r.pctOptionB)
            .percentCell(r.pctOptionC)
            .percentCell(r.pctOptionD)
            .percentCell(r.pctOptionE)
            .percentCell(r.pctSkipped);
        sums[0] += r.pctOptionA;
        sums[1] += r.pctOptionB;
        sums[2] += r.pctOptionC;
        sums[3] += r.pctOptionD;
        sums[4] += r.pctOptionE;
        sums[5] += r.pctSkipped;
    }
    table.row("Average");
    for (double s : sums)
        table.percentCell(s / 6.0);
    std::printf("%s", table.render().c_str());
    return 0;
}
