/**
 * @file
 * Shared plumbing for the table/figure reproduction harnesses.
 *
 * Every harness accepts:
 *   argv[1] (optional)  instruction budget per run (default 300000)
 *   argv[2] (optional)  worker threads for matrix harnesses
 *                       (default 0 = one per hardware thread)
 *
 * Matrix-heavy harnesses queue their (benchmark x configuration) runs
 * on a MatrixHarness, which executes them concurrently through the
 * campaign engine; aggregation is deterministic, so a harness prints
 * the same table for any worker count.
 */

#ifndef CTCPSIM_BENCH_BENCH_UTIL_HH
#define CTCPSIM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "campaign/campaign.hh"
#include "common/logging.hh"
#include "config/presets.hh"
#include "core/simulator.hh"
#include "stats/stats.hh"
#include "stats/table.hh"
#include "workload/workload.hh"

namespace ctcp::bench {

/** Instruction budget from argv (default 300k per run). */
inline std::uint64_t
budgetFromArgs(int argc, char **argv, std::uint64_t fallback = 300'000)
{
    if (argc > 1) {
        const std::uint64_t v = std::strtoull(argv[1], nullptr, 10);
        if (v > 0)
            return v;
    }
    return fallback;
}

/** Worker threads from argv (default 0 = one per hardware thread). */
inline unsigned
jobsFromArgs(int argc, char **argv)
{
    if (argc > 2)
        return static_cast<unsigned>(
            std::strtoul(argv[2], nullptr, 10));
    return 0;
}

/** Run one simulation serially (for the single-column harnesses). */
inline SimResult
simulate(const std::string &bench, SimConfig cfg, std::uint64_t budget)
{
    cfg.instructionLimit = budget;
    Program p = workloads::build(bench);
    CtcpSimulator sim(cfg, p);
    return sim.run();
}

/** Base config with a strategy applied. */
inline SimConfig
withStrategy(SimConfig cfg, AssignStrategy s, unsigned issue_latency = 4)
{
    cfg.assign.strategy = s;
    cfg.assign.issueTimeLatency = issue_latency;
    return cfg;
}

/**
 * A (benchmark x configuration) matrix executed through the campaign
 * engine. Queue runs with add(), execute them all with run(), then
 * read results back by (benchmark, tag) while assembling tables.
 */
class MatrixHarness
{
  public:
    /**
     * @param budget  instruction budget applied to every run
     * @param jobs    worker threads (0 = one per hardware thread)
     */
    explicit MatrixHarness(std::uint64_t budget, unsigned jobs = 0)
        : budget_(budget)
    {
        options_.jobs = jobs;
    }

    /** Queue @p cfg for @p bench under @p tag (duplicates ignored). */
    void
    add(const std::string &bench, SimConfig cfg, const std::string &tag)
    {
        const Key key{bench, tag};
        if (index_.count(key))
            return;
        cfg.instructionLimit = budget_;
        index_[key] = jobs_.size();
        jobs_.push_back(
            campaign::makeJob(bench + "/" + tag, bench, std::move(cfg)));
    }

    /** Execute every queued run. fatal()s if any job fails. */
    void
    run()
    {
        report_ = campaign::runCampaign(jobs_, options_);
        for (const campaign::JobOutcome &out : report_.jobs)
            if (!out.ok())
                ctcp_fatal("campaign job '%s' failed: %s",
                           out.label.c_str(), out.error.c_str());
    }

    /** Result of the run queued under (bench, tag). */
    const SimResult &
    at(const std::string &bench, const std::string &tag) const
    {
        const auto it = index_.find(Key{bench, tag});
        ctcp_assert(it != index_.end(), "no queued run '%s/%s'",
                    bench.c_str(), tag.c_str());
        return report_.jobs[it->second].result;
    }

  private:
    using Key = std::pair<std::string, std::string>;

    std::uint64_t budget_;
    campaign::Options options_;
    std::vector<campaign::Job> jobs_;
    std::map<Key, std::size_t> index_;
    campaign::Report report_;
};

/** The six benchmarks of the paper's in-depth analysis. */
inline const std::vector<std::string> &
selectedSix()
{
    return workloads::selectedSix();
}

/** Standard header line for a harness. */
inline void
banner(const char *experiment, const char *paper_summary,
       std::uint64_t budget)
{
    std::printf("== %s ==\n", experiment);
    std::printf("paper reference: %s\n", paper_summary);
    std::printf("instructions per run: %llu\n\n",
                static_cast<unsigned long long>(budget));
}

} // namespace ctcp::bench

#endif // CTCPSIM_BENCH_BENCH_UTIL_HH
