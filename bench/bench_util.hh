/**
 * @file
 * Shared plumbing for the table/figure reproduction harnesses.
 *
 * Every harness accepts:
 *   argv[1] (optional)  instruction budget per run (default 300000)
 *
 * Runs are cached per (benchmark, configuration digest) within one
 * process so harnesses that need the same simulation for several
 * columns only pay for it once.
 */

#ifndef CTCPSIM_BENCH_BENCH_UTIL_HH
#define CTCPSIM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "config/presets.hh"
#include "core/simulator.hh"
#include "stats/stats.hh"
#include "stats/table.hh"
#include "workload/workload.hh"

namespace ctcp::bench {

/** Instruction budget from argv (default 300k per run). */
inline std::uint64_t
budgetFromArgs(int argc, char **argv, std::uint64_t fallback = 300'000)
{
    if (argc > 1) {
        const std::uint64_t v = std::strtoull(argv[1], nullptr, 10);
        if (v > 0)
            return v;
    }
    return fallback;
}

/** Run one simulation. */
inline SimResult
simulate(const std::string &bench, SimConfig cfg, std::uint64_t budget)
{
    cfg.instructionLimit = budget;
    Program p = workloads::build(bench);
    CtcpSimulator sim(cfg, p);
    return sim.run();
}

/** Base config with a strategy applied. */
inline SimConfig
withStrategy(SimConfig cfg, AssignStrategy s, unsigned issue_latency = 4)
{
    cfg.assign.strategy = s;
    cfg.assign.issueTimeLatency = issue_latency;
    return cfg;
}

/** The six benchmarks of the paper's in-depth analysis. */
inline const std::vector<std::string> &
selectedSix()
{
    return workloads::selectedSix();
}

/** Standard header line for a harness. */
inline void
banner(const char *experiment, const char *paper_summary,
       std::uint64_t budget)
{
    std::printf("== %s ==\n", experiment);
    std::printf("paper reference: %s\n", paper_summary);
    std::printf("instructions per run: %llu\n\n",
                static_cast<unsigned long long>(budget));
}

} // namespace ctcp::bench

#endif // CTCPSIM_BENCH_BENCH_UTIL_HH
