/**
 * @file
 * Table 2 — critical data-forwarding dependencies on the base machine:
 * the share of forwarded dependencies that are critical (the
 * consumer's last-arriving input) and, of those, the share that cross
 * trace boundaries.
 *
 * Paper values: % critical avg 83.4 (78.6..86.6); % of critical that
 * are inter-trace avg 27.8 (24.0..35.4).
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace ctcp;
    using namespace ctcp::bench;

    const std::uint64_t budget = budgetFromArgs(argc, argv);
    banner("Table 2: Critical Data Forwarding Dependencies",
           "% deps critical avg 83.4; % critical inter-trace avg 27.8",
           budget);

    TextTable table({"benchmark", "% deps critical",
                     "% critical inter-trace"});
    double sum_crit = 0.0, sum_inter = 0.0;
    for (const std::string &bench : selectedSix()) {
        const SimResult r = simulate(bench, baseConfig(), budget);
        table.row(bench)
            .percentCell(r.pctDepsCritical)
            .percentCell(r.pctCritInterTrace);
        sum_crit += r.pctDepsCritical;
        sum_inter += r.pctCritInterTrace;
    }
    table.row("Avg")
        .percentCell(sum_crit / 6.0)
        .percentCell(sum_inter / 6.0);
    std::printf("%s", table.render().c_str());
    return 0;
}
